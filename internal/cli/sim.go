package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dnnparallel"
	"dnnparallel/internal/compute"
	"dnnparallel/internal/experiments"
	"dnnparallel/internal/machine"
	"dnnparallel/internal/planner"
	"dnnparallel/internal/report"
	"dnnparallel/internal/timeline"
)

// SimMain is the dnnsim entry point: it regenerates the paper's tables
// and figures. A -config scenario seeds the shared setup (network,
// machine or topology, batch, dataset, overlap policy, micro-batch
// sweep); flags override the scenario field-for-field, exactly as in
// dnnplan.
func SimMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dnnsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	config := fs.String("config", "", "scenario JSON file (see examples/scenarios); flags override its fields")
	exp := fs.String("exp", "all", "experiment: table1|fig4|eq5|fig6|fig7|fig8|fig9|fig10|timeline|pipeline|verify|sensitivity|memory|onebyone|all")
	csv := fs.Bool("csv", false, "emit CSV instead of text (scaling experiments)")
	batch := fs.Int("B", 2048, "global minibatch size for strong-scaling experiments")
	beyondB := fs.Int("B10", 512, "batch size for the beyond-batch experiment (fig10)")
	ps := fs.String("P", "", "comma-separated process counts (defaults per experiment)")
	policy := fs.String("policy", "backprop", "overlap policy for -exp timeline/pipeline: none|backprop|full")
	micro := fs.String("micro", "1,2,4,8,16,32", "comma-separated micro-batch counts for -exp pipeline")
	schedule := fs.String("schedule", "gpipe", "pipeline schedule shape for -exp pipeline: gpipe|1f1b")
	stages := fs.Int("stages", 0, "pipeline stage count S for -trace; > 1 partitions the network into S contiguous stages, each on its own grid (the pinned grid is per-stage)")
	partition := fs.String("partition", "", `pipeline layer partition for -trace: "auto" or comma-separated cut positions into the weighted-layer list`)
	trace := fs.String("trace", "", "write the scenario's simulated schedule as Chrome trace-event JSON to this file (needs a pinned grid; open in https://ui.perfetto.dev) and exit")
	calibrate := fs.Bool("calibrate", false, "measure THIS host's GEMM throughput and use it as the compute model (the paper's empirical methodology)")
	ppn := fs.Int("ppn", 0, "ranks per node; > 0 prices the planner-backed experiments against the two-level Cori topology")
	nodes := fs.Int("nodes", 0, "node count (with -ppn, defaults the process counts to nodes × ppn)")
	levels := fs.String("levels", "", "N-level hierarchical topology as name:alpha:bw[:group],… innermost first (e.g. node:5e-7:60:16,rack:1e-6:12:128,spine:2e-6:6); replaces the -nodes/-ppn sugar")
	workers := fs.Int("workers", 0, "candidate-evaluation goroutines for planner-backed experiments (0 = GOMAXPROCS); never changes the result, only wall time")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	set := visited(fs)

	sc, err := loadBase(*config)
	if err != nil {
		fmt.Fprintln(stderr, "dnnsim:", err)
		return 2
	}
	if set["B"] || *config == "" {
		sc.Batch = *batch
	}
	var psList []int
	if *ps != "" {
		psList, err = parseIntList(*ps, "process count")
		if err != nil {
			fmt.Fprintln(stderr, "dnnsim:", err)
			return 2
		}
	}
	if err := applyTopologyFlags(&sc, set, topoFlags{ppn: *ppn, nodes: *nodes, levels: *levels, explicitP: set["P"]}); err != nil {
		fmt.Fprintln(stderr, "dnnsim:", err)
		return 2
	}
	if set["nodes"] {
		want := *nodes * sc.Topology.RanksPerNode
		if set["P"] && !(len(psList) == 1 && psList[0] == want) {
			fmt.Fprintf(stderr, "dnnsim: -P %s conflicts with -nodes %d × -ppn %d = %d\n",
				*ps, *nodes, sc.Topology.RanksPerNode, want)
			return 2
		}
		psList = []int{want}
		sc.Procs = want
	} else if set["P"] {
		// The sweep drives P; keep the spec self-consistent by probing
		// with the first entry rather than the config/default procs.
		sc.Procs = psList[0]
	} else if *config != "" && sc.Procs > 0 {
		psList = []int{sc.Procs}
	}
	if set["policy"] || (*config == "" && !sc.Timeline) {
		pol, err := timeline.ParsePolicy(*policy)
		if err != nil {
			fmt.Fprintln(stderr, "dnnsim:", err)
			return 2
		}
		sc.Timeline = true
		sc.Policy = pol
	}
	if set["schedule"] || *config == "" {
		shape, err := timeline.ParseSchedule(*schedule)
		if err != nil {
			fmt.Fprintln(stderr, "dnnsim:", err)
			return 2
		}
		sc.Schedule = shape
	}
	if set["micro"] || (*config == "" && len(sc.MicroBatches) == 0) {
		ms, err := parseIntList(*micro, "micro-batch count")
		if err != nil {
			fmt.Fprintln(stderr, "dnnsim:", err)
			return 2
		}
		sc.MicroBatches = ms
	}
	if err := applyPipelineFlags(&sc, set, *stages, *partition); err != nil {
		fmt.Fprintln(stderr, "dnnsim:", err)
		return 2
	}
	applyWorkersFlag(&sc, set, *workers)
	sc = sc.Normalize()
	if *trace != "" {
		// Trace export is a different product: simulate the pinned
		// configuration once and write its schedule as Chrome
		// trace-event JSON instead of running experiments.
		res, err := dnnparallel.Simulate(sc)
		if err != nil {
			fmt.Fprintln(stderr, "dnnsim:", err)
			return 2
		}
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(stderr, "dnnsim:", err)
			return 1
		}
		werr := report.WriteChromeTrace(f, res.Raw)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "dnnsim:", werr)
			return 1
		}
		fmt.Fprintf(stdout, "wrote Chrome trace for %s grid %s (%d spans, makespan %ss) to %s — open in https://ui.perfetto.dev\n",
			res.Network, res.Config.Grid, len(res.Raw.Spans), report.F(res.Makespan), *trace)
		if len(res.Config.PerStage) > 0 {
			fmt.Fprintf(stdout, "\nPer-stage partition (S=%d, cuts %v, per-stage grid %s):\n",
				res.Config.Stages, res.Config.Partition, res.Config.Grid)
			fmt.Fprint(stdout, StageTable(res.Config.PerStage))
		}
		return 0
	}
	// The experiments sweep P themselves (and ignore any pinned grid);
	// validate the spec with a stand-in process count when the scenario
	// leaves it open.
	probe := sc
	probe.Grid = ""
	if probe.Procs == 0 {
		probe.Procs = 1
	}
	r, err := probe.Resolve()
	if err != nil {
		fmt.Fprintln(stderr, "dnnsim:", err)
		return 2
	}

	setup := experiments.Default()
	setup.Net = r.Net
	setup.DatasetN = r.Options.DatasetN
	setup.Workers = r.Options.Workers
	if sc.Topology != nil {
		setup.Topology = r.Options.Topology
	} else {
		setup.Machine = r.Options.Machine
		setup.Compute = r.Options.Compute
	}

	if *calibrate {
		setup.Compute = compute.CalibrateLocal(192, time.Second)
		fmt.Fprintf(stdout, "calibrated local compute model: peak·eff ≈ %.3g FLOP/s, half-speed batch ≈ %.1f\n\n",
			setup.Compute.Peak*setup.Compute.EffMax, setup.Compute.BHalf)
	}

	pol := r.Options.TimelinePolicy
	shape := r.Options.Schedule
	micros := sc.MicroBatches
	if len(micros) == 0 {
		micros = []int{1}
	}
	B := sc.Batch
	orDefault := func(def []int) []int {
		if len(psList) > 0 {
			return psList
		}
		return def
	}

	run := func(name string) error {
		switch name {
		case "table1":
			fmt.Fprintln(stdout, "Table 1 — fixed simulation parameters")
			fmt.Fprint(stdout, setup.Table1())
		case "fig4":
			fmt.Fprint(stdout, experiments.RenderFig4(setup.Fig4()))
		case "eq5":
			fmt.Fprint(stdout, experiments.RenderEq5(setup.Eq5()))
		case "fig6", "fig7", "fig8":
			mode := planner.Uniform
			overlap := false
			title := "Fig. 6 — strong scaling, same Pr×Pc grid for all layers"
			if name == "fig7" {
				mode = planner.ConvBatch
				title = "Fig. 7 — strong scaling, conv layers pure batch, FC layers on the grid"
			}
			if name == "fig8" {
				mode = planner.ConvBatch
				overlap = true
				title = "Fig. 8 — Fig. 7 with perfect comm/backprop overlap"
			}
			res, err := setup.StrongScaling(mode, overlap, B, orDefault(experiments.StandardFig6Ps()))
			if err != nil {
				return err
			}
			emitScaling(stdout, title, res, *csv, setup.DatasetN)
		case "fig9":
			res, err := setup.WeakScaling(planner.Uniform, experiments.StandardFig9Pairs())
			if err != nil {
				return err
			}
			emitScaling(stdout, "Fig. 9 — weak scaling (B and P grow together), uniform grids", res, *csv, setup.DatasetN)
			// The caption's remark: "a better approach is to use pure batch
			// parallelism for convolutional layers" — quantified.
			better, err := setup.WeakScaling(planner.ConvBatch, experiments.StandardFig9Pairs())
			if err != nil {
				return err
			}
			emitScaling(stdout, "Fig. 9 (improved per caption) — conv layers pure batch", better, *csv, setup.DatasetN)
		case "fig10":
			res, err := setup.BeyondBatch(*beyondB, orDefault(experiments.StandardFig10Ps()))
			if err != nil {
				return err
			}
			emitScaling(stdout, fmt.Sprintf("Fig. 10 — scaling beyond the P=B=%d limit with domain-parallel convs", *beyondB),
				res, *csv, setup.DatasetN)
		case "timeline":
			var studies []experiments.TimelineResult
			for _, P := range orDefault(experiments.StandardFig6Ps()) {
				tr, err := setup.TimelineStudy(planner.Auto, pol, B, P)
				if err != nil {
					return err
				}
				if *csv {
					studies = append(studies, tr)
					continue
				}
				fmt.Fprint(stdout, experiments.RenderTimeline(tr))
				fmt.Fprintln(stdout)
			}
			if *csv {
				fmt.Fprint(stdout, experiments.TimelineCSV(studies))
			}
		case "pipeline":
			var all []experiments.PipelineRow
			for _, P := range orDefault([]int{512}) {
				rows, err := setup.PipelineSweep(planner.Auto, pol, shape, B, P, micros)
				if err != nil {
					return err
				}
				if *csv {
					all = append(all, rows...)
					continue
				}
				fmt.Fprint(stdout, experiments.RenderPipeline(rows))
				fmt.Fprintln(stdout)
			}
			if *csv {
				fmt.Fprint(stdout, experiments.PipelineCSV(all))
			}
		case "verify":
			reps, err := experiments.VerifyEngines(4, 8, 7, machine.CoriKNL())
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderEngineReports(reps))
		case "sensitivity":
			rows, err := setup.Sensitivity()
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderSensitivity(rows))
		case "memory":
			fmt.Fprint(stdout, experiments.RenderMemory(setup.MemoryStudy(B, 512), B, 512))
		case "onebyone":
			row, err := setup.OneByOneStudy(128, 512)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderOneByOne(row))
		case "modelcheck":
			rows, err := experiments.ModelCheck()
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderModelCheck(rows))
		case "convergence":
			rows, err := experiments.Convergence(4, 11)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderConvergence(rows, 4))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Fprintln(stdout)
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig4", "eq5", "fig6", "fig7", "fig8", "fig9", "fig10",
			"timeline", "pipeline", "verify", "sensitivity", "memory", "onebyone", "modelcheck", "convergence"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(stderr, "dnnsim:", err)
			return 1
		}
	}
	return 0
}

func emitScaling(w io.Writer, title string, res []experiments.ScalingResult, csv bool, n int) {
	if csv {
		fmt.Fprint(w, experiments.ScalingCSV(res))
		return
	}
	fmt.Fprint(w, experiments.RenderScaling(title, res, true, n))
}
