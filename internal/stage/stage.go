// Package stage defines contiguous layer→stage partitions for
// pipeline-parallel training and their search space.
//
// A Partition slices a forward-ordered layer list into S contiguous,
// non-empty stages — the assignment regime of stage-partitioned
// ("pipeline model parallel") training, where each worker group owns a
// layer slice and activations are handed off at the S−1 boundaries.
// The package is pure combinatorics: it knows layer counts and
// per-layer weights (compute seconds, FLOPs — any non-negative cost),
// not networks or grids, so costmodel and planner can share one
// partition vocabulary without a dependency cycle.
//
// The search space of contiguous partitions is the compositions of L
// into S parts, C(L−1, S−1) of them. Enumerate walks it exhaustively
// when it is small (a configurable cap) and falls back to a heuristic
// neighborhood — the balanced-compute partition, the count-balanced
// one, and every single-boundary shift of the balanced-compute
// boundaries — when it is not. The balanced-compute partition (minimal
// maximum stage weight, the classic linear-partition problem) always
// comes first, so a searcher that keeps the earliest tie is anchored on
// the sensible default.
package stage

import (
	"fmt"
	"sort"
	"strings"
)

// Partition is a contiguous assignment of L layers to S stages.
// Stage k owns layers Starts[k] … Starts[k+1]−1 (the last stage runs
// through L−1). The zero value is invalid; build one with New,
// FromCuts, Balanced, BalancedCompute, or Enumerate.
type Partition struct {
	// Starts lists each stage's first layer index: Starts[0] == 0,
	// strictly increasing, every entry < L. len(Starts) is the stage
	// count S.
	Starts []int
	// L is the number of layers partitioned.
	L int
}

// New builds and validates a partition from stage start indices.
func New(starts []int, L int) (Partition, error) {
	p := Partition{Starts: starts, L: L}
	if err := p.Validate(); err != nil {
		return Partition{}, err
	}
	return p, nil
}

// FromCuts builds a partition from its S−1 interior boundaries: cut c
// means a new stage begins at layer c. This is the user-facing spelling
// (the scenario JSON `partition` list).
func FromCuts(cuts []int, L int) (Partition, error) {
	starts := make([]int, 0, len(cuts)+1)
	starts = append(starts, 0)
	starts = append(starts, cuts...)
	return New(starts, L)
}

// Stages returns the stage count S.
func (p Partition) Stages() int { return len(p.Starts) }

// Cuts returns the S−1 interior boundaries (Starts without the leading
// zero) — the inverse of FromCuts.
func (p Partition) Cuts() []int {
	if len(p.Starts) <= 1 {
		return nil
	}
	return append([]int(nil), p.Starts[1:]...)
}

// StageOf returns the stage owning layer i.
func (p Partition) StageOf(i int) int {
	if i < 0 || i >= p.L {
		panic(fmt.Sprintf("stage: layer %d outside [0,%d)", i, p.L))
	}
	// The last start ≤ i. sort.SearchInts finds the first start > i.
	return sort.SearchInts(p.Starts, i+1) - 1
}

// Bounds returns stage k's layer range [lo, hi).
func (p Partition) Bounds(k int) (lo, hi int) {
	if k < 0 || k >= len(p.Starts) {
		panic(fmt.Sprintf("stage: stage %d outside [0,%d)", k, len(p.Starts)))
	}
	lo = p.Starts[k]
	hi = p.L
	if k+1 < len(p.Starts) {
		hi = p.Starts[k+1]
	}
	return lo, hi
}

// Size returns the number of layers in stage k.
func (p Partition) Size(k int) int {
	lo, hi := p.Bounds(k)
	return hi - lo
}

// Validate checks the partition invariants: at least one stage, no
// empty stage, starts strictly increasing from 0, all inside [0, L).
func (p Partition) Validate() error {
	if p.L < 1 {
		return fmt.Errorf("stage: partition needs ≥ 1 layer, got L=%d", p.L)
	}
	if len(p.Starts) == 0 {
		return fmt.Errorf("stage: partition needs ≥ 1 stage")
	}
	if len(p.Starts) > p.L {
		return fmt.Errorf("stage: %d stages exceed %d layers (a stage cannot be empty)", len(p.Starts), p.L)
	}
	if p.Starts[0] != 0 {
		return fmt.Errorf("stage: first stage must start at layer 0, got %d", p.Starts[0])
	}
	for k := 1; k < len(p.Starts); k++ {
		if p.Starts[k] <= p.Starts[k-1] {
			return fmt.Errorf("stage: starts must be strictly increasing, got %v", p.Starts)
		}
		if p.Starts[k] >= p.L {
			return fmt.Errorf("stage: start %d outside the %d-layer list", p.Starts[k], p.L)
		}
	}
	return nil
}

// Equal reports whether two partitions slice the same layer list the
// same way.
func (p Partition) Equal(q Partition) bool {
	if p.L != q.L || len(p.Starts) != len(q.Starts) {
		return false
	}
	for i := range p.Starts {
		if p.Starts[i] != q.Starts[i] {
			return false
		}
	}
	return true
}

// String renders the partition as its stage ranges, e.g. "0-3|4-6|7-9".
func (p Partition) String() string {
	var b strings.Builder
	for k := range p.Starts {
		lo, hi := p.Bounds(k)
		if k > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d-%d", lo, hi-1)
	}
	return b.String()
}

// Balanced returns the count-balanced partition of L layers into S
// stages: layer i belongs to stage ⌊i·S/L⌋, i.e. stage k starts at
// ⌈k·L/S⌉ — exactly the implicit partition the timeline scheduler used
// before partitions became explicit.
func Balanced(L, S int) Partition {
	if S < 1 || S > L {
		panic(fmt.Sprintf("stage: Balanced needs 1 ≤ S ≤ L, got S=%d L=%d", S, L))
	}
	starts := make([]int, S)
	for k := range starts {
		starts[k] = (k*L + S - 1) / S
	}
	return Partition{Starts: starts, L: L}
}

// BalancedCompute returns the partition of len(costs) layers into S
// stages minimizing the maximum per-stage cost sum — the linear
// partition problem, solved by binary search over the bottleneck value
// with a greedy feasibility check. Ties (several optimal partitions)
// resolve deterministically: each stage takes as many layers as fit
// under the optimal bottleneck while leaving one layer per remaining
// stage, which front-loads work the way a fill–drain pipeline prefers.
// Costs must be non-negative.
func BalancedCompute(costs []float64, S int) Partition {
	L := len(costs)
	if S < 1 || S > L {
		panic(fmt.Sprintf("stage: BalancedCompute needs 1 ≤ S ≤ len(costs), got S=%d L=%d", S, L))
	}
	var total, max float64
	for i, c := range costs {
		if c < 0 {
			panic(fmt.Sprintf("stage: negative layer cost %g at %d", c, i))
		}
		total += c
		if c > max {
			max = c
		}
	}
	// fits reports whether the layers split into ≤ S contiguous chunks
	// of sum ≤ cap each (always leaving enough layers for the remaining
	// stages).
	fits := func(cap float64) bool {
		chunks, sum := 1, 0.0
		for _, c := range costs {
			if sum+c > cap {
				chunks++
				sum = c
				if chunks > S {
					return false
				}
			} else {
				sum += c
			}
		}
		return true
	}
	// Binary search the bottleneck in [max(max, total/S), total].
	lo, hi := max, total
	if t := total / float64(S); t > lo {
		lo = t
	}
	for i := 0; i < 64 && hi-lo > 1e-12*(1+hi); i++ {
		mid := lo + (hi-lo)/2
		if fits(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Greedy layout under the found bottleneck. Float slack: hi is
	// feasible by construction of the loop invariant (fits(total) holds).
	starts := make([]int, 0, S)
	starts = append(starts, 0)
	sum := 0.0
	for i := 0; i < L; i++ {
		remainingStages := S - len(starts)
		remainingLayers := L - i
		mustCut := remainingLayers == remainingStages && i > starts[len(starts)-1]
		if i > starts[len(starts)-1] && remainingStages > 0 && (sum+costs[i] > hi || mustCut) {
			starts = append(starts, i)
			sum = 0
		}
		sum += costs[i]
	}
	// Degenerate cost vectors (all zeros) can under-produce cuts; pad
	// with the trailing layers so every stage is non-empty.
	for len(starts) < S {
		starts = append(starts, L-(S-len(starts)))
	}
	return Partition{Starts: starts, L: L}
}

// Count returns the number of contiguous partitions of L layers into S
// stages, C(L−1, S−1), clamped to avoid overflow (returns at least
// cap+1 once past it, so callers compare against a cap safely).
func Count(L, S, cap int) int {
	if S < 1 || S > L {
		return 0
	}
	n, k := L-1, S-1
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if cap > 0 && c > cap {
			return cap + 1
		}
	}
	return c
}

// Enumerate returns the candidate partitions of len(costs) layers into
// S stages, deterministically ordered with the balanced-compute
// heuristic first. When the full space C(L−1, S−1) is within cap the
// list is exhaustive (balanced-compute first, then the remaining
// compositions in lexicographic start order); beyond the cap it is the
// heuristic neighborhood: balanced compute, count-balanced, and every
// single-boundary ±1/±2 shift of the balanced-compute cuts, deduped.
// cap ≤ 0 means an unlimited exhaustive walk.
func Enumerate(costs []float64, S, cap int) []Partition {
	L := len(costs)
	if S < 1 || S > L {
		return nil
	}
	anchor := BalancedCompute(costs, S)
	if S == 1 {
		return []Partition{anchor}
	}
	out := []Partition{anchor}
	seen := map[string]bool{key(anchor): true}
	add := func(p Partition) {
		if k := key(p); !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	if n := Count(L, S, cap); cap <= 0 || n <= cap {
		walk(L, S, func(starts []int) {
			add(Partition{Starts: append([]int(nil), starts...), L: L})
		})
		return out
	}
	add(Balanced(L, S))
	for bi := 1; bi < S; bi++ {
		for _, d := range []int{-2, -1, 1, 2} {
			starts := append([]int(nil), anchor.Starts...)
			starts[bi] += d
			if p, err := New(starts, L); err == nil {
				add(p)
			}
		}
	}
	return out
}

// walk visits every composition's start vector in lexicographic order.
func walk(L, S int, visit func(starts []int)) {
	starts := make([]int, S)
	var rec func(k, from int)
	rec = func(k, from int) {
		if k == S {
			visit(starts)
			return
		}
		// Stage k can start anywhere that leaves ≥ 1 layer per
		// remaining stage.
		for s := from; s <= L-(S-k); s++ {
			starts[k] = s
			rec(k+1, s+1)
		}
	}
	starts[0] = 0
	rec(1, 1)
}

func key(p Partition) string { return fmt.Sprint(p.Starts) }
