package stage

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		starts []int
		L      int
		ok     bool
	}{
		{"single stage", []int{0}, 8, true},
		{"two stages", []int{0, 4}, 8, true},
		{"every layer its own stage", []int{0, 1, 2, 3}, 4, true},
		{"empty starts", nil, 8, false},
		{"zero layers", []int{0}, 0, false},
		{"first start nonzero", []int{1, 4}, 8, false},
		{"not increasing", []int{0, 4, 4}, 8, false},
		{"start past end", []int{0, 8}, 8, false},
		{"more stages than layers", []int{0, 1, 2}, 2, false},
	}
	for _, c := range cases {
		_, err := New(c.starts, c.L)
		if (err == nil) != c.ok {
			t.Errorf("%s: New(%v, %d) err=%v, want ok=%v", c.name, c.starts, c.L, err, c.ok)
		}
	}
}

func TestFromCutsRoundTrip(t *testing.T) {
	p, err := FromCuts([]int{3, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cuts(); !reflect.DeepEqual(got, []int{3, 5}) {
		t.Fatalf("Cuts() = %v, want [3 5]", got)
	}
	if p.Stages() != 3 {
		t.Fatalf("Stages() = %d, want 3", p.Stages())
	}
	if p.String() != "0-2|3-4|5-7" {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestStageOfAndBounds(t *testing.T) {
	p, _ := New([]int{0, 3, 5}, 8)
	wantStage := []int{0, 0, 0, 1, 1, 2, 2, 2}
	for i, w := range wantStage {
		if got := p.StageOf(i); got != w {
			t.Errorf("StageOf(%d) = %d, want %d", i, got, w)
		}
	}
	type rng struct{ lo, hi int }
	want := []rng{{0, 3}, {3, 5}, {5, 8}}
	for k, w := range want {
		lo, hi := p.Bounds(k)
		if lo != w.lo || hi != w.hi {
			t.Errorf("Bounds(%d) = [%d,%d), want [%d,%d)", k, lo, hi, w.lo, w.hi)
		}
		if p.Size(k) != w.hi-w.lo {
			t.Errorf("Size(%d) = %d, want %d", k, p.Size(k), w.hi-w.lo)
		}
	}
}

// Balanced must match the scheduler's historical count-balanced rule
// stageOf(i, L) = i*S/L for every (L, S, i).
func TestBalancedMatchesSchedulerRule(t *testing.T) {
	for L := 1; L <= 24; L++ {
		for S := 1; S <= L; S++ {
			p := Balanced(L, S)
			if err := p.Validate(); err != nil {
				t.Fatalf("Balanced(%d,%d) invalid: %v", L, S, err)
			}
			for i := 0; i < L; i++ {
				if got, want := p.StageOf(i), i*S/L; got != want {
					t.Fatalf("Balanced(%d,%d).StageOf(%d) = %d, want %d", L, S, i, got, want)
				}
			}
		}
	}
}

func TestBalancedComputeOptimal(t *testing.T) {
	// Brute-force the bottleneck over all partitions and check
	// BalancedCompute achieves it.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		L := 2 + rng.Intn(9)
		S := 1 + rng.Intn(L)
		costs := make([]float64, L)
		for i := range costs {
			costs[i] = rng.Float64() * 10
		}
		best := bruteBottleneck(costs, S)
		p := BalancedCompute(costs, S)
		if err := p.Validate(); err != nil {
			t.Fatalf("BalancedCompute invalid: %v", err)
		}
		got := bottleneck(costs, p)
		if got > best*(1+1e-9) {
			t.Fatalf("L=%d S=%d costs=%v: BalancedCompute bottleneck %g > optimal %g (partition %v)",
				L, S, costs, got, best, p.Starts)
		}
	}
}

func TestBalancedComputeSkewed(t *testing.T) {
	// One huge layer should sit alone; the rest split across the other
	// stage.
	costs := []float64{1, 1, 100, 1, 1}
	p := BalancedCompute(costs, 2)
	// Optimal bottleneck is 102 ({1,1,100}|{1,1}) — the greedy fill
	// front-loads under the bottleneck.
	if got := bottleneck(costs, p); got > 102+1e-9 {
		t.Fatalf("bottleneck %g too large for partition %v", got, p.Starts)
	}
}

func TestBalancedComputeAllZeros(t *testing.T) {
	p := BalancedCompute(make([]float64, 5), 3)
	if err := p.Validate(); err != nil {
		t.Fatalf("all-zero costs produced invalid partition %v: %v", p.Starts, err)
	}
}

func TestCount(t *testing.T) {
	cases := []struct{ L, S, want int }{
		{8, 1, 1}, {8, 2, 7}, {8, 3, 21}, {8, 8, 1}, {5, 3, 6}, {2, 3, 0},
	}
	for _, c := range cases {
		if got := Count(c.L, c.S, 0); got != c.want {
			t.Errorf("Count(%d,%d) = %d, want %d", c.L, c.S, got, c.want)
		}
	}
	// Cap clamps instead of overflowing.
	if got := Count(60, 30, 100); got != 101 {
		t.Errorf("Count(60,30,cap=100) = %d, want 101 (cap+1)", got)
	}
}

func TestEnumerateExhaustiveUnderCap(t *testing.T) {
	costs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	parts := Enumerate(costs, 3, 64) // C(7,2) = 21 ≤ 64
	if len(parts) != 21 {
		t.Fatalf("got %d partitions, want 21", len(parts))
	}
	if !parts[0].Equal(BalancedCompute(costs, 3)) {
		t.Fatalf("first partition %v is not the balanced-compute anchor", parts[0].Starts)
	}
	seen := map[string]bool{}
	for _, p := range parts {
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid partition %v: %v", p.Starts, err)
		}
		k := p.String()
		if seen[k] {
			t.Fatalf("duplicate partition %s", k)
		}
		seen[k] = true
	}
	// Deterministic across calls.
	again := Enumerate(costs, 3, 64)
	if !reflect.DeepEqual(parts, again) {
		t.Fatal("Enumerate is not deterministic")
	}
}

func TestEnumerateHeuristicOverCap(t *testing.T) {
	costs := make([]float64, 16)
	for i := range costs {
		costs[i] = float64(1 + i%4)
	}
	parts := Enumerate(costs, 5, 10) // C(15,4) = 1365 > 10
	if len(parts) == 0 {
		t.Fatal("no heuristic partitions")
	}
	if len(parts) > 2+4*4+1 {
		t.Fatalf("heuristic set unexpectedly large: %d", len(parts))
	}
	if !parts[0].Equal(BalancedCompute(costs, 5)) {
		t.Fatal("anchor not first")
	}
	for _, p := range parts {
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid heuristic partition %v: %v", p.Starts, err)
		}
	}
}

func TestEnumerateSingleStage(t *testing.T) {
	parts := Enumerate([]float64{1, 2, 3}, 1, 64)
	if len(parts) != 1 || !parts[0].Equal(Partition{Starts: []int{0}, L: 3}) {
		t.Fatalf("S=1 should yield exactly the trivial partition, got %v", parts)
	}
}

func bottleneck(costs []float64, p Partition) float64 {
	worst := 0.0
	for k := 0; k < p.Stages(); k++ {
		lo, hi := p.Bounds(k)
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += costs[i]
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

func bruteBottleneck(costs []float64, S int) float64 {
	best := -1.0
	walk(len(costs), S, func(starts []int) {
		p := Partition{Starts: append([]int(nil), starts...), L: len(costs)}
		if b := bottleneck(costs, p); best < 0 || b < best {
			best = b
		}
	})
	return best
}
