package parallel

import (
	"fmt"

	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
	"dnnparallel/internal/tensor"
)

// domainStack executes the spatial front of a network (conv/pool/LRN
// layers up to the first FC) with each rank of comm owning a horizontal
// slab of every sample — the Fig. 3 decomposition. Convolutions exchange
// ⌊k/2⌋ halo rows with vertical neighbors via non-blocking sends (the
// paper's overlappable pairwise exchange); pooling is halo-free because
// shard boundaries are required to align with pooling windows; 1×1
// convolutions communicate nothing (the Eq. 7 observation). Convolution
// weights are fully replicated; their gradients are all-reduced over
// gradComm (all P processes, per Eq. 7/Eq. 9).
type domainStack struct {
	spec     *nn.Network
	comm     *mpi.Comm // spatial group (size Pr); rank order = slab order
	gradComm *mpi.Comm // weight-gradient all-reduce group (all P)
	stopLi   int       // first non-spatial layer index (end of the stack)

	weights []*tensor.Matrix // replicated conv filters
	slot    map[int]int

	// forward caches (local slabs)
	xExt  []*tensor.Tensor4 // halo-extended conv inputs
	haloT []int             // rows of top halo present in xExt
	pre   []*tensor.Tensor4 // local pre-activation conv outputs
	t4In  []*tensor.Tensor4 // pool/LRN local inputs
	arg   [][]int
	denom [][]float64
}

// Halo exchange tags (engine-level tags must be ≥ 0).
const (
	tagHaloDown = 100 + iota // data flowing to the next (lower) slab
	tagHaloUp                // data flowing to the previous (upper) slab
	tagGradDown
	tagGradUp
)

// spatialPrefixEnd returns the index of the first FC layer (the end of the
// spatial stack); len(Layers) if the network is all-spatial.
func spatialPrefixEnd(spec *nn.Network) int {
	for i := range spec.Layers {
		if spec.Layers[i].Kind == nn.FC {
			return i
		}
	}
	return len(spec.Layers)
}

// validateDomain checks that the spatial front of spec can be slab-split
// pr ways: conv layers must be stride-1, square, odd, half-padded (shape
// preserving); pool layers must tile exactly (k = stride); every spatial
// layer's height must split into pr equal stride-aligned slabs no thinner
// than the halo.
func validateDomain(spec *nn.Network, pr int) error {
	if pr < 1 {
		return fmt.Errorf("parallel: domain split pr=%d", pr)
	}
	stop := spatialPrefixEnd(spec)
	h := spec.Input.H
	for li := 0; li < stop; li++ {
		l := &spec.Layers[li]
		switch l.Kind {
		case nn.Conv:
			if l.Stride != 1 || l.KH != l.KW || l.KH%2 == 0 || l.Pad != l.KH/2 {
				return fmt.Errorf("parallel: domain conv %s must be stride-1 odd-square half-padded (k=%dx%d s=%d pad=%d)",
					l.Name, l.KH, l.KW, l.Stride, l.Pad)
			}
			if h%pr != 0 {
				return fmt.Errorf("parallel: layer %s height %d not divisible by pr=%d", l.Name, h, pr)
			}
			if h/pr < l.KH/2 {
				return fmt.Errorf("parallel: layer %s slab height %d thinner than halo %d", l.Name, h/pr, l.KH/2)
			}
		case nn.Pool:
			if l.KH != l.Stride || l.KW != l.Stride || l.Pad != 0 {
				return fmt.Errorf("parallel: domain pool %s must tile exactly (k=%d stride=%d)", l.Name, l.KH, l.Stride)
			}
			if h%pr != 0 || (h/pr)%l.Stride != 0 {
				return fmt.Errorf("parallel: pool %s slabs of %d rows not aligned to stride %d", l.Name, h/pr, l.Stride)
			}
			h /= l.Stride
		case nn.LRN, nn.Dropout:
			// spatially local
		}
	}
	if h%pr != 0 {
		return fmt.Errorf("parallel: final spatial height %d not divisible by pr=%d", h, pr)
	}
	return nil
}

func newDomainStack(spec *nn.Network, ref *nn.Model, comm, gradComm *mpi.Comm) *domainStack {
	d := &domainStack{
		spec: spec, comm: comm, gradComm: gradComm,
		stopLi: spatialPrefixEnd(spec),
		slot:   map[int]int{},
	}
	for _, li := range spec.WeightedLayers() {
		if li >= d.stopLi {
			break
		}
		d.slot[li] = len(d.weights)
		d.weights = append(d.weights, ref.Weights[ref.WeightSlot(li)].Clone())
	}
	n := d.stopLi
	d.xExt = make([]*tensor.Tensor4, n)
	d.haloT = make([]int, n)
	d.pre = make([]*tensor.Tensor4, n)
	d.t4In = make([]*tensor.Tensor4, n)
	d.arg = make([][]int, n)
	d.denom = make([][]float64, n)
	return d
}

// exchangeHalo swaps h boundary rows with vertical neighbors and returns
// the halo-extended tensor plus the number of top halo rows attached.
func (d *domainStack) exchangeHalo(x *tensor.Tensor4, h int) (*tensor.Tensor4, int) {
	r, p := d.comm.Rank(), d.comm.Size()
	if h == 0 || p == 1 {
		return x, 0
	}
	// Non-blocking sends of our boundary slabs…
	if r > 0 {
		d.comm.ISend(r-1, tagHaloUp, x.SliceRowsH(0, h).Data)
	}
	if r < p-1 {
		d.comm.ISend(r+1, tagHaloDown, x.SliceRowsH(x.H-h, x.H).Data)
	}
	// …then receive the neighbours' boundaries.
	var top, bot *tensor.Tensor4
	if r > 0 {
		top = &tensor.Tensor4{N: x.N, C: x.C, H: h, W: x.W, Data: d.comm.Recv(r-1, tagHaloDown)}
	}
	if r < p-1 {
		bot = &tensor.Tensor4{N: x.N, C: x.C, H: h, W: x.W, Data: d.comm.Recv(r+1, tagHaloUp)}
	}
	extH := x.H
	haloT := 0
	if top != nil {
		extH += h
		haloT = h
	}
	if bot != nil {
		extH += h
	}
	ext := tensor.NewTensor4(x.N, x.C, extH, x.W)
	if top != nil {
		ext.SetRowsH(0, top)
	}
	ext.SetRowsH(haloT, x)
	if bot != nil {
		ext.SetRowsH(haloT+x.H, bot)
	}
	return ext, haloT
}

// Forward runs the spatial stack on this rank's slab (rows in slab order
// by comm rank) and returns the local slab of the final spatial output.
// lastW is the network's final weighted layer (for the ReLU policy).
func (d *domainStack) Forward(x *tensor.Tensor4, lastW int) *tensor.Tensor4 {
	cur := x
	for li := 0; li < d.stopLi; li++ {
		l := &d.spec.Layers[li]
		switch l.Kind {
		case nn.Conv:
			halo := l.KH / 2
			ext, haloT := d.exchangeHalo(cur, halo)
			d.xExt[li] = ext
			d.haloT[li] = haloT
			yExt := nn.ConvForward(ext, d.weights[d.slot[li]], l.KH, l.KW, 1, l.Pad)
			pre := yExt.SliceRowsH(haloT, haloT+cur.H)
			d.pre[li] = pre
			if li != lastW {
				cur = nn.ReLUForward4(pre)
			} else {
				cur = pre
			}
		case nn.Pool:
			d.t4In[li] = cur
			y, arg := nn.MaxPoolForward(cur, l.KH, l.KW, l.Stride)
			d.arg[li] = arg
			cur = y
		case nn.LRN:
			d.t4In[li] = cur
			y, denom := nn.LRNForward(cur)
			d.denom[li] = denom
			cur = y
		case nn.Dropout:
			// identity
		}
	}
	return cur
}

// Backward propagates the local output-slab gradient back through the
// stack, all-reducing each conv layer's weight gradient over gradComm,
// and returns the per-conv-layer gradients (in slot order).
func (d *domainStack) Backward(dy *tensor.Tensor4, lastW int) []*tensor.Matrix {
	grads := make([]*tensor.Matrix, len(d.weights))
	cur := dy
	for li := d.stopLi - 1; li >= 0; li-- {
		l := &d.spec.Layers[li]
		switch l.Kind {
		case nn.Dropout:
			// identity
		case nn.LRN:
			cur = nn.LRNBackward(cur, d.t4In[li], d.denom[li])
		case nn.Pool:
			cur = nn.MaxPoolBackward(cur, d.arg[li], d.t4In[li])
		case nn.Conv:
			if li != lastW {
				cur = nn.ReLUBackward4(cur, d.pre[li])
			}
			ext := d.xExt[li]
			haloT := d.haloT[li]
			// Place the local output gradient at its position in the
			// extended frame; halo output rows belong to the neighbours.
			dyExt := tensor.NewTensor4(ext.N, l.OutC, ext.H, ext.W)
			dyExt.SetRowsH(haloT, cur)
			if li == 0 {
				// No ∆X past the first layer (Eq. 3's i ≥ 2 bound).
				grads[d.slot[li]] = allReduceMat(d.gradComm, nn.ConvGradWeights(ext, dyExt, l.KH, l.KW, 1, l.Pad))
				continue
			}
			dxExt, dw := nn.ConvBackward(ext, d.weights[d.slot[li]], dyExt, l.KH, l.KW, 1, l.Pad)
			grads[d.slot[li]] = allReduceMat(d.gradComm, dw)
			cur = d.foldHaloGrad(dxExt, haloT, cur.H)
		}
	}
	return grads
}

// foldHaloGrad extracts this rank's slab from an extended input gradient
// and exchanges the halo-row contributions with neighbours (the backward
// halo exchange of Eq. 7), accumulating what they computed for our rows.
func (d *domainStack) foldHaloGrad(dxExt *tensor.Tensor4, haloT, ownH int) *tensor.Tensor4 {
	r, p := d.comm.Rank(), d.comm.Size()
	own := dxExt.SliceRowsH(haloT, haloT+ownH)
	haloB := dxExt.H - haloT - ownH
	if r > 0 && haloT > 0 {
		d.comm.ISend(r-1, tagGradUp, dxExt.SliceRowsH(0, haloT).Data)
	}
	if r < p-1 && haloB > 0 {
		d.comm.ISend(r+1, tagGradDown, dxExt.SliceRowsH(haloT+ownH, dxExt.H).Data)
	}
	if r < p-1 && haloB > 0 {
		got := d.comm.Recv(r+1, tagGradUp) // their top-halo grad = our bottom rows
		t := tensor.Tensor4{N: own.N, C: own.C, H: haloB, W: own.W, Data: got}
		for n := 0; n < own.N; n++ {
			for c := 0; c < own.C; c++ {
				for h := 0; h < haloB; h++ {
					for w := 0; w < own.W; w++ {
						own.Add(n, c, ownH-haloB+h, w, t.At(n, c, h, w))
					}
				}
			}
		}
	}
	if r > 0 && haloT > 0 {
		got := d.comm.Recv(r-1, tagGradDown) // their bottom-halo grad = our top rows
		t := tensor.Tensor4{N: own.N, C: own.C, H: haloT, W: own.W, Data: got}
		for n := 0; n < own.N; n++ {
			for c := 0; c < own.C; c++ {
				for h := 0; h < haloT; h++ {
					for w := 0; w < own.W; w++ {
						own.Add(n, c, h, w, t.At(n, c, h, w))
					}
				}
			}
		}
	}
	return own
}

// Apply updates the replicated conv filters with the (already reduced,
// hence identical) gradients.
func (d *domainStack) Apply(opt nn.Optimizer, grads []*tensor.Matrix) {
	opt.Step(d.weights, grads)
}

// OutShape returns the spatial stack's full (unsharded) output shape.
func (d *domainStack) OutShape() nn.Shape {
	if d.stopLi == 0 {
		return d.spec.Input
	}
	return d.spec.Layers[d.stopLi-1].Out
}
