package parallel

import (
	"fmt"

	"dnnparallel/internal/data"
	"dnnparallel/internal/grid"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
	"dnnparallel/internal/tensor"
)

// RunDomain trains with pure domain parallelism (Fig. 3 / Eq. 7): every
// rank holds all weights and a 1/P horizontal slab of every sample.
// Convolutions exchange halo rows; conv weight gradients are all-reduced
// over all P ranks. The fully-connected suffix is computed redundantly on
// every rank after a row all-gather — the paper's observation that domain
// parallelism "is not applicable to fully connected layers" made concrete:
// the gather is exactly the "halo region = all of the input activations".
func RunDomain(w *mpi.World, cfg Config, ds *data.Dataset) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	p := w.Size()
	if err := validateDomain(cfg.Spec, p); err != nil {
		return Result{}, err
	}
	if spatialPrefixEnd(cfg.Spec) == len(cfg.Spec.Layers) {
		return Result{}, fmt.Errorf("parallel: RunDomain needs an FC classifier suffix")
	}
	col := &collector{}
	stats := w.Run(func(proc *mpi.Proc) {
		world := proc.WorldComm()
		ref := nn.NewModel(cfg.Spec, cfg.Seed)
		stack := newDomainStack(cfg.Spec, ref, world, world)
		// The FC suffix runs replicated: a degenerate 1.5D grid of one
		// process (self-communicators make every collective a no-op).
		self := proc.CommFrom([]int{proc.Rank()})
		fc := newFC15D(cfg.Spec, ref, self, self)
		stackOpt, fcOpt := cfg.optimizer(), cfg.optimizer()
		lastW := lastWeighted(cfg.Spec)
		losses := make([]float64, 0, cfg.Steps)
		for s := 0; s < cfg.Steps; s++ {
			x, labels := ds.Batch(s, cfg.BatchSize)
			rows := grid.BlockShard(x.H, p, proc.Rank())
			slab := x.SliceRowsH(rows.Lo, rows.Hi)
			out := stack.Forward(slab, lastW)
			// Gather the slabs: every rank assembles the full activation
			// block (the FC "halo is everything" cost).
			full := gatherRowsH(world, out, stack.OutShape().H)
			logits := fc.Forward(full.AsMatrix())
			loss, d := nn.SoftmaxCrossEntropy(logits, labels)
			fcGrads, dIn := fc.Backward(d)
			fc.Apply(fcOpt, fcGrads)
			if dIn != nil {
				sh := stack.OutShape()
				d4 := tensor.FromMatrix(dIn, sh.C, sh.H, sh.W)
				outRows := grid.BlockShard(sh.H, p, proc.Rank())
				convGrads := stack.Backward(d4.SliceRowsH(outRows.Lo, outRows.Hi), lastW)
				stack.Apply(stackOpt, convGrads)
			}
			losses = append(losses, loss)
		}
		if proc.Rank() == 0 {
			ws := append(append([]*tensor.Matrix{}, stack.weights...), fc.Assemble()...)
			col.report(cloneMats(ws), losses)
		} else {
			fc.Assemble()
		}
	})
	if col.err != nil {
		return Result{}, col.err
	}
	return Result{Weights: col.weights, Losses: col.losses, Stats: stats}, nil
}

// lastWeighted returns the index of the final weighted layer.
func lastWeighted(spec *nn.Network) int {
	w := spec.WeightedLayers()
	return w[len(w)-1]
}

func cloneMats(ms []*tensor.Matrix) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(ms))
	for i, m := range ms {
		out[i] = m.Clone()
	}
	return out
}
