// Package parallel implements executable distributed-SGD training engines
// for every parallelization the paper analyzes, running on the
// internal/mpi simulated cluster:
//
//   - RunSerial          — the single-process reference (nn.Model);
//   - RunBatch           — pure batch parallelism (Fig. 2, Eq. 4);
//   - RunModel           — pure model parallelism (Fig. 1, Eq. 3);
//   - RunDomain          — pure domain parallelism with halo exchanges
//     (Fig. 3, Eq. 7);
//   - RunIntegrated15D   — the 1.5D integrated model+batch algorithm on a
//     Pr × Pc grid (Fig. 5, Eq. 8);
//   - RunFullIntegrated  — domain-parallel convolutions feeding 1.5D
//     fully-connected layers (Section 2.4, Eq. 9).
//
// Every engine consumes the same deterministic initial weights and batch
// schedule as the serial reference and is tested to reproduce its loss and
// weight trajectory to floating-point accumulation error — the executable
// counterpart of the paper's claim that all these schemes compute the
// *same* synchronous SGD iteration, differing only in communication.
package parallel

import (
	"fmt"
	"sync"

	"dnnparallel/internal/data"
	"dnnparallel/internal/grid"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
	"dnnparallel/internal/tensor"
)

// Config describes one training run.
type Config struct {
	Spec      *nn.Network
	Seed      int64
	LR        float64
	Steps     int
	BatchSize int
	// NewOptimizer, when set, supplies the first-order update rule
	// (momentum, Nesterov, …). Nil means plain SGD at LR. Engines call
	// the factory once per locally-owned weight list; because the updates
	// are element-wise, shard-local state is exactly equivalent to the
	// serial optimizer.
	NewOptimizer nn.OptimizerFactory
}

// optimizer builds this run's update rule.
func (c Config) optimizer() nn.Optimizer {
	if c.NewOptimizer != nil {
		return c.NewOptimizer()
	}
	return &nn.SGD{LR: c.LR}
}

func (c Config) validate() error {
	if c.Spec == nil {
		return fmt.Errorf("parallel: nil network spec")
	}
	if c.Steps < 1 || c.BatchSize < 1 {
		return fmt.Errorf("parallel: need Steps ≥ 1 and BatchSize ≥ 1, got %d, %d", c.Steps, c.BatchSize)
	}
	if c.LR <= 0 {
		return fmt.Errorf("parallel: non-positive learning rate %g", c.LR)
	}
	return nil
}

// Result is what an engine reports after training.
type Result struct {
	// Weights is the fully assembled weight list after the final step
	// (identical layout to nn.Model.Weights).
	Weights []*tensor.Matrix
	// Losses is the global training loss per step.
	Losses []float64
	// Stats are the per-rank mpi accounting records (nil for RunSerial).
	Stats []mpi.Stats
}

// RunSerial trains the reference model and reports its weight trajectory —
// the oracle all engines are compared against.
func RunSerial(cfg Config, ds *data.Dataset) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	m := nn.NewModel(cfg.Spec, cfg.Seed)
	opt := cfg.optimizer()
	losses := make([]float64, 0, cfg.Steps)
	for s := 0; s < cfg.Steps; s++ {
		x, labels := ds.Batch(s, cfg.BatchSize)
		loss, grads := m.ForwardBackward(x, labels)
		m.Apply(opt, grads)
		losses = append(losses, loss)
	}
	return Result{Weights: m.CloneWeights(), Losses: losses}, nil
}

// collector gathers rank-0 outputs from inside World.Run bodies.
type collector struct {
	mu      sync.Mutex
	weights []*tensor.Matrix
	losses  []float64
	err     error
}

func (c *collector) report(weights []*tensor.Matrix, losses []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.weights = weights
	c.losses = losses
}

// flattenMats packs a list of matrices into one contiguous vector, scaling
// each element by scale — used to issue a single gradient all-reduce per
// step, like production data-parallel frameworks.
func flattenMats(ms []*tensor.Matrix, scale float64) []float64 {
	n := 0
	for _, m := range ms {
		n += len(m.Data)
	}
	out := make([]float64, 0, n)
	for _, m := range ms {
		for _, v := range m.Data {
			out = append(out, v*scale)
		}
	}
	return out
}

// unflattenLike unpacks flat into matrices shaped like template.
func unflattenLike(template []*tensor.Matrix, flat []float64) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(template))
	off := 0
	for i, m := range template {
		g := tensor.New(m.Rows, m.Cols)
		copy(g.Data, flat[off:off+len(m.Data)])
		off += len(m.Data)
		out[i] = g
	}
	return out
}

// rowShard returns the [lo, hi) row block of m for shard i of p. Used to
// derive each rank's weight shard from the shared deterministic full
// initialization, so shards concatenate exactly to the serial weights.
func rowShard(m *tensor.Matrix, p, i int) *tensor.Matrix {
	s := grid.BlockShard(m.Rows, p, i)
	return m.SliceRows(s.Lo, s.Hi)
}

// channelShard returns channels [lo, hi) of t for shard i of p.
func channelShard(t *tensor.Tensor4, p, i int) *tensor.Tensor4 {
	s := grid.BlockShard(t.C, p, i)
	out := tensor.NewTensor4(t.N, s.Len(), t.H, t.W)
	plane := t.H * t.W
	for n := 0; n < t.N; n++ {
		src := ((n*t.C + s.Lo) * plane)
		dst := (n * s.Len() * plane)
		copy(out.Data[dst:dst+s.Len()*plane], t.Data[src:src+s.Len()*plane])
	}
	return out
}

// gatherChannels all-gathers equal channel shards over comm and reassembles
// the full tensor (channels in comm-rank order). All shards must have the
// same channel count.
func gatherChannels(comm *mpi.Comm, shard *tensor.Tensor4, fullC int) *tensor.Tensor4 {
	p := comm.Size()
	if shard.C*p != fullC {
		panic(fmt.Sprintf("parallel: gatherChannels %d×%d ≠ %d", shard.C, p, fullC))
	}
	flat := comm.AllGather(shard.Data)
	full := tensor.NewTensor4(shard.N, fullC, shard.H, shard.W)
	plane := shard.H * shard.W
	per := shard.N * shard.C * plane
	for r := 0; r < p; r++ {
		block := flat[r*per : (r+1)*per]
		for n := 0; n < shard.N; n++ {
			src := n * shard.C * plane
			dst := ((n*fullC + r*shard.C) * plane)
			copy(full.Data[dst:dst+shard.C*plane], block[src:src+shard.C*plane])
		}
	}
	return full
}

// gatherRowsH all-gathers equal spatial row shards over comm and
// reassembles the full tensor (rows in comm-rank order).
func gatherRowsH(comm *mpi.Comm, shard *tensor.Tensor4, fullH int) *tensor.Tensor4 {
	p := comm.Size()
	if shard.H*p != fullH {
		panic(fmt.Sprintf("parallel: gatherRowsH %d×%d ≠ %d", shard.H, p, fullH))
	}
	flat := comm.AllGather(shard.Data)
	full := tensor.NewTensor4(shard.N, shard.C, fullH, shard.W)
	per := shard.Elems()
	for r := 0; r < p; r++ {
		block := tensor.Tensor4{N: shard.N, C: shard.C, H: shard.H, W: shard.W, Data: flat[r*per : (r+1)*per]}
		full.SetRowsH(r*shard.H, &block)
	}
	return full
}

// gatherMatrixRows all-gathers equal row blocks of a matrix over comm into
// the full matrix (row blocks in comm-rank order).
func gatherMatrixRows(comm *mpi.Comm, shard *tensor.Matrix, fullRows int) *tensor.Matrix {
	p := comm.Size()
	if shard.Rows*p != fullRows {
		panic(fmt.Sprintf("parallel: gatherMatrixRows %d×%d ≠ %d", shard.Rows, p, fullRows))
	}
	flat := comm.AllGather(shard.Data)
	return tensor.Wrap(fullRows, shard.Cols, flat)
}

// allReduceMat sums a matrix element-wise across comm.
func allReduceMat(comm *mpi.Comm, m *tensor.Matrix) *tensor.Matrix {
	return tensor.Wrap(m.Rows, m.Cols, comm.AllReduceSum(m.Data))
}

// allReduceT4 sums a tensor element-wise across comm.
func allReduceT4(comm *mpi.Comm, t *tensor.Tensor4) *tensor.Tensor4 {
	return &tensor.Tensor4{N: t.N, C: t.C, H: t.H, W: t.W, Data: comm.AllReduceSum(t.Data)}
}

// globalLoss averages per-shard mean losses weighted by shard size.
func globalLoss(comm *mpi.Comm, localLoss float64, localB, globalB int) float64 {
	s := comm.AllReduceSum([]float64{localLoss * float64(localB)})
	return s[0] / float64(globalB)
}
