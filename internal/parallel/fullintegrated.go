package parallel

import (
	"fmt"

	"dnnparallel/internal/data"
	"dnnparallel/internal/grid"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
	"dnnparallel/internal/tensor"
)

// RunFullIntegrated trains a conv+FC network with the paper's fully
// integrated model+batch+domain scheme (Section 2.4 / Eq. 9) on a Pr × Pc
// grid:
//
//   - the batch is split over the Pc columns;
//   - within each column group (Pr ranks), convolutional layers are
//     domain-parallel — each rank owns a horizontal slab of the column's
//     samples, with halo exchanges between vertical neighbours (L_D);
//   - conv weights are replicated everywhere and their gradients
//     all-reduced over all P = Pr·Pc ranks;
//   - fully-connected layers run the 1.5D algorithm: weights sharded over
//     Pr, activations gathered over column groups, ∆W reduced over row
//     groups (L_M).
//
// This is the configuration that extends strong scaling beyond P = B
// (Fig. 10): Pc is capped at B while Pr keeps growing.
func RunFullIntegrated(w *mpi.World, cfg Config, ds *data.Dataset, g grid.Grid) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if g.P() != w.Size() {
		return Result{}, fmt.Errorf("parallel: grid %v needs %d ranks, world has %d", g, g.P(), w.Size())
	}
	if cfg.BatchSize%g.Pc != 0 {
		return Result{}, fmt.Errorf("parallel: batch %d not divisible by Pc=%d", cfg.BatchSize, g.Pc)
	}
	if err := validateDomain(cfg.Spec, g.Pr); err != nil {
		return Result{}, err
	}
	fcStart := spatialPrefixEnd(cfg.Spec)
	if fcStart == len(cfg.Spec.Layers) {
		return Result{}, fmt.Errorf("parallel: RunFullIntegrated needs an FC suffix")
	}
	for _, li := range cfg.Spec.WeightedLayers() {
		if li < fcStart {
			continue
		}
		if l := &cfg.Spec.Layers[li]; l.OutN%g.Pr != 0 {
			return Result{}, fmt.Errorf("parallel: fc %s OutN=%d not divisible by Pr=%d", l.Name, l.OutN, g.Pr)
		}
	}
	col := &collector{}
	stats := w.Run(func(proc *mpi.Proc) {
		r, c := g.Coords(proc.Rank())
		rowComm := proc.CommFrom(g.RowGroup(r))
		colComm := proc.CommFrom(g.ColGroup(c))
		world := proc.WorldComm()
		ref := nn.NewModel(cfg.Spec, cfg.Seed)
		stack := newDomainStack(cfg.Spec, ref, colComm, world)
		fc := newFC15D(cfg.Spec, ref, rowComm, colComm)
		stackOpt, fcOpt := cfg.optimizer(), cfg.optimizer()
		lastW := lastWeighted(cfg.Spec)
		bShard := grid.BlockShard(cfg.BatchSize, g.Pc, c)
		losses := make([]float64, 0, cfg.Steps)
		for s := 0; s < cfg.Steps; s++ {
			x, labels := ds.Batch(s, cfg.BatchSize)
			lx := x.SliceSamples(bShard.Lo, bShard.Hi)
			ll := labels[bShard.Lo:bShard.Hi]
			// Domain-parallel conv front on my slab of my column's batch.
			rows := grid.BlockShard(lx.H, g.Pr, r)
			out := stack.Forward(lx.SliceRowsH(rows.Lo, rows.Hi), lastW)
			// Column-group gather: full activations of my batch shard,
			// replicated across the Pr ranks — exactly the 1.5D layout.
			full := gatherRowsH(colComm, out, stack.OutShape().H)
			logits := fc.Forward(full.AsMatrix())
			loss, d := nn.SoftmaxCrossEntropy(logits, ll)
			d.ScaleInPlace(float64(bShard.Len()) / float64(cfg.BatchSize))
			fcGrads, dIn := fc.Backward(d)
			fc.Apply(fcOpt, fcGrads)
			sh := stack.OutShape()
			d4 := tensor.FromMatrix(dIn, sh.C, sh.H, sh.W)
			outRows := grid.BlockShard(sh.H, g.Pr, r)
			convGrads := stack.Backward(d4.SliceRowsH(outRows.Lo, outRows.Hi), lastW)
			stack.Apply(stackOpt, convGrads)
			losses = append(losses, globalLoss(rowComm, loss, bShard.Len(), cfg.BatchSize))
		}
		fcWs := fc.Assemble()
		if proc.Rank() == 0 {
			ws := append(append([]*tensor.Matrix{}, stack.weights...), fcWs...)
			col.report(cloneMats(ws), losses)
		}
	})
	if col.err != nil {
		return Result{}, col.err
	}
	return Result{Weights: col.weights, Losses: col.losses, Stats: stats}, nil
}
