package parallel

import (
	"fmt"

	"dnnparallel/internal/data"
	"dnnparallel/internal/grid"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
)

// RunBatch trains with pure batch parallelism (Fig. 2): every rank holds a
// full model replica and 1/P of each minibatch; the only communication is
// one gradient all-reduce per step (Eq. 4). Replicas stay bit-identical
// because every rank applies the same reduced gradient.
func RunBatch(w *mpi.World, cfg Config, ds *data.Dataset) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if w.Size() > cfg.BatchSize {
		return Result{}, fmt.Errorf("parallel: batch parallelism needs P ≤ B, got P=%d B=%d", w.Size(), cfg.BatchSize)
	}
	col := &collector{}
	stats := w.Run(func(p *mpi.Proc) {
		world := p.WorldComm()
		model := nn.NewModel(cfg.Spec, cfg.Seed)
		opt := cfg.optimizer()
		shard := grid.BlockShard(cfg.BatchSize, p.Size(), p.Rank())
		losses := make([]float64, 0, cfg.Steps)
		for s := 0; s < cfg.Steps; s++ {
			x, labels := ds.Batch(s, cfg.BatchSize)
			lx := x.SliceSamples(shard.Lo, shard.Hi)
			ll := labels[shard.Lo:shard.Hi]
			loss, grads := model.ForwardBackward(lx, ll)
			// Local grads are averaged over the shard; reweight to the
			// global 1/B average before the sum-reduce.
			flat := flattenMats(grads, float64(shard.Len())/float64(cfg.BatchSize))
			reduced := world.AllReduceSum(flat)
			model.Apply(opt, unflattenLike(model.Weights, reduced))
			losses = append(losses, globalLoss(world, loss, shard.Len(), cfg.BatchSize))
		}
		if p.Rank() == 0 {
			col.report(model.CloneWeights(), losses)
		}
	})
	if col.err != nil {
		return Result{}, col.err
	}
	return Result{Weights: col.weights, Losses: col.losses, Stats: stats}, nil
}
