package parallel

import (
	"fmt"

	"dnnparallel/internal/data"
	"dnnparallel/internal/grid"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
	"dnnparallel/internal/tensor"
)

// fc15D executes the fully-connected suffix of a network with the paper's
// 1.5D algorithm (Fig. 5) on a Pr × Pc grid: each process holds 1/Pr of
// every FC weight matrix (replicated Pc times) and works on the batch
// shard of its column (replicated Pr times). Forward all-gathers the
// local activation panel over the column group (Pr ranks); backward
// all-reduces ∆X over the column group and ∆W over the row group
// (Pc ranks) — exactly the three Eq. 8 terms.
type fc15D struct {
	spec    *nn.Network
	startLi int // first FC layer
	lastW   int
	rowComm *mpi.Comm // Pc ranks sharing my weight shard
	colComm *mpi.Comm // Pr ranks sharing my batch shard
	pr      int
	r       int

	shards []*tensor.Matrix
	slot   map[int]int
	matIn  []*tensor.Matrix
	matPre []*tensor.Matrix
}

func newFC15D(spec *nn.Network, ref *nn.Model, rowComm, colComm *mpi.Comm) *fc15D {
	f := &fc15D{
		spec: spec, startLi: spatialPrefixEnd(spec),
		rowComm: rowComm, colComm: colComm,
		pr: colComm.Size(), r: colComm.Rank(),
		slot:   map[int]int{},
		matIn:  make([]*tensor.Matrix, len(spec.Layers)),
		matPre: make([]*tensor.Matrix, len(spec.Layers)),
	}
	for _, li := range spec.WeightedLayers() {
		f.lastW = li
		if li < f.startLi {
			continue
		}
		full := ref.Weights[ref.WeightSlot(li)]
		f.slot[li] = len(f.shards)
		f.shards = append(f.shards, rowShard(full, f.pr, f.r))
	}
	return f
}

// Forward maps the local batch panel (d × B/Pc, full rows) to logits.
func (f *fc15D) Forward(cur *tensor.Matrix) *tensor.Matrix {
	for li := f.startLi; li < len(f.spec.Layers); li++ {
		l := &f.spec.Layers[li]
		switch l.Kind {
		case nn.FC:
			f.matIn[li] = cur
			local := nn.DenseForward(f.shards[f.slot[li]], cur)
			pre := gatherMatrixRows(f.colComm, local, l.OutN) // Eq. 8 all-gather over Pr
			f.matPre[li] = pre
			if li != f.lastW {
				cur = nn.ReLUForward(pre)
			} else {
				cur = pre
			}
		case nn.Dropout:
			// identity
		default:
			panic(fmt.Sprintf("parallel: fc15D met %v layer %s", l.Kind, l.Name))
		}
	}
	return cur
}

// Backward consumes the globally-scaled logits gradient, all-reduces each
// ∆W over the row group, updates nothing, and returns (per-slot grads,
// the ∆X of the first FC layer's input — nil when the FC stack starts the
// network, mirroring the serial model's Eq. 3 i ≥ 2 skip).
func (f *fc15D) Backward(dlogits *tensor.Matrix) ([]*tensor.Matrix, *tensor.Matrix) {
	grads := make([]*tensor.Matrix, len(f.shards))
	d := dlogits
	for li := len(f.spec.Layers) - 1; li >= f.startLi; li-- {
		l := &f.spec.Layers[li]
		switch l.Kind {
		case nn.Dropout:
			continue
		case nn.FC:
		}
		if li != f.lastW {
			d = nn.ReLUBackward(d, f.matPre[li])
		}
		dyShard := rowShard(d, f.pr, f.r)
		partialW := nn.DenseGradWeights(dyShard, f.matIn[li])
		grads[f.slot[li]] = allReduceMat(f.rowComm, partialW) // Eq. 8 ∆W all-reduce over Pc
		if li == 0 {
			return grads, nil
		}
		partialX := nn.DenseBackwardInput(f.shards[f.slot[li]], dyShard)
		d = allReduceMat(f.colComm, partialX) // Eq. 8 ∆X all-reduce over Pr
		if li == f.startLi {
			return grads, d
		}
	}
	return grads, nil
}

// Apply updates the local weight shards with the given optimizer (state
// is per-matrix, so shard-local optimizer state matches serial exactly).
func (f *fc15D) Apply(opt nn.Optimizer, grads []*tensor.Matrix) {
	opt.Step(f.shards, grads)
}

// Assemble all-gathers the shards into full weight matrices (one per FC
// layer, in slot order). Every rank of the column group must call it.
func (f *fc15D) Assemble() []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(f.shards))
	for i, s := range f.shards {
		out[i] = gatherMatrixRows(f.colComm, s, s.Rows*f.pr)
	}
	return out
}

// RunIntegrated15D trains a fully-connected network with the 1.5D
// integrated model+batch algorithm on grid g (Fig. 5 / Eq. 8). With
// g = 1×P it degenerates to pure batch parallelism and with g = P×1 to
// pure model parallelism — the spectrum the paper emphasizes.
func RunIntegrated15D(w *mpi.World, cfg Config, ds *data.Dataset, g grid.Grid) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if g.P() != w.Size() {
		return Result{}, fmt.Errorf("parallel: grid %v needs %d ranks, world has %d", g, g.P(), w.Size())
	}
	if cfg.BatchSize%g.Pc != 0 {
		return Result{}, fmt.Errorf("parallel: batch %d not divisible by Pc=%d", cfg.BatchSize, g.Pc)
	}
	if spatialPrefixEnd(cfg.Spec) != 0 {
		return Result{}, fmt.Errorf("parallel: RunIntegrated15D requires a fully-connected network; use RunFullIntegrated for conv fronts")
	}
	for _, li := range cfg.Spec.WeightedLayers() {
		if l := &cfg.Spec.Layers[li]; l.OutN%g.Pr != 0 {
			return Result{}, fmt.Errorf("parallel: fc %s OutN=%d not divisible by Pr=%d", l.Name, l.OutN, g.Pr)
		}
	}
	col := &collector{}
	stats := w.Run(func(proc *mpi.Proc) {
		r, c := g.Coords(proc.Rank())
		rowComm := proc.CommFrom(g.RowGroup(r))
		colComm := proc.CommFrom(g.ColGroup(c))
		ref := nn.NewModel(cfg.Spec, cfg.Seed)
		eng := newFC15D(cfg.Spec, ref, rowComm, colComm)
		opt := cfg.optimizer()
		bShard := grid.BlockShard(cfg.BatchSize, g.Pc, c)
		losses := make([]float64, 0, cfg.Steps)
		for s := 0; s < cfg.Steps; s++ {
			x, labels := ds.Batch(s, cfg.BatchSize)
			lx := x.SliceSamples(bShard.Lo, bShard.Hi).AsMatrix()
			ll := labels[bShard.Lo:bShard.Hi]
			logits := eng.Forward(lx)
			loss, d := nn.SoftmaxCrossEntropy(logits, ll)
			// Rescale the 1/localB mean gradient to the global 1/B mean.
			d.ScaleInPlace(float64(bShard.Len()) / float64(cfg.BatchSize))
			grads, _ := eng.Backward(d)
			eng.Apply(opt, grads)
			losses = append(losses, globalLoss(rowComm, loss, bShard.Len(), cfg.BatchSize))
		}
		ws := eng.Assemble()
		if proc.Rank() == 0 {
			col.report(ws, losses)
		}
	})
	if col.err != nil {
		return Result{}, col.err
	}
	return Result{Weights: col.weights, Losses: col.losses, Stats: stats}, nil
}
