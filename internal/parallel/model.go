package parallel

import (
	"fmt"

	"dnnparallel/internal/data"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
	"dnnparallel/internal/tensor"
)

// RunModel trains with pure 1-D model parallelism (Fig. 1): every rank
// holds 1/P of each weight matrix (a block of convolution filters / FC
// output rows) and the full minibatch. Each layer's forward pass computes
// a local activation slab and all-gathers it (the first Eq. 3 sum); each
// backward pass all-reduces the partial ∆X (the second Eq. 3 sum). Weight
// gradients are local — no gradient all-reduce at all.
//
// Requires every conv OutC and FC OutN to be divisible by P so the
// all-gathered slabs are equal-sized.
func RunModel(w *mpi.World, cfg Config, ds *data.Dataset) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	p := w.Size()
	for _, li := range cfg.Spec.WeightedLayers() {
		l := &cfg.Spec.Layers[li]
		if l.Kind == nn.Conv && l.OutC%p != 0 {
			return Result{}, fmt.Errorf("parallel: conv %s OutC=%d not divisible by P=%d", l.Name, l.OutC, p)
		}
		if l.Kind == nn.FC && l.OutN%p != 0 {
			return Result{}, fmt.Errorf("parallel: fc %s OutN=%d not divisible by P=%d", l.Name, l.OutN, p)
		}
	}
	col := &collector{}
	stats := w.Run(func(proc *mpi.Proc) {
		world := proc.WorldComm()
		eng := newModelEngine(cfg, proc.Rank(), p)
		opt := cfg.optimizer()
		losses := make([]float64, 0, cfg.Steps)
		for s := 0; s < cfg.Steps; s++ {
			x, labels := ds.Batch(s, cfg.BatchSize)
			losses = append(losses, eng.step(world, opt, x, labels))
		}
		if proc.Rank() == 0 {
			col.report(eng.assemble(world), losses)
		} else {
			eng.assemble(world) // all ranks participate in the gathers
		}
	})
	if col.err != nil {
		return Result{}, col.err
	}
	return Result{Weights: col.weights, Losses: col.losses, Stats: stats}, nil
}

// modelEngine is the per-rank state of the pure model-parallel trainer.
type modelEngine struct {
	spec   *nn.Network
	rank   int
	p      int
	lastW  int
	shards []*tensor.Matrix // row/filter shard per weighted layer
	slot   map[int]int

	// per-layer forward caches (full, replicated tensors)
	t4In   []*tensor.Tensor4
	t4Pre  []*tensor.Tensor4
	matIn  []*tensor.Matrix
	matPre []*tensor.Matrix
	arg    [][]int
	denom  [][]float64
}

func newModelEngine(cfg Config, rank, p int) *modelEngine {
	ref := nn.NewModel(cfg.Spec, cfg.Seed) // deterministic full init, then shard
	e := &modelEngine{spec: cfg.Spec, rank: rank, p: p, lastW: -1, slot: map[int]int{}}
	for _, li := range cfg.Spec.WeightedLayers() {
		full := ref.Weights[ref.WeightSlot(li)]
		e.slot[li] = len(e.shards)
		e.shards = append(e.shards, rowShard(full, p, rank))
		e.lastW = li
	}
	n := len(cfg.Spec.Layers)
	e.t4In = make([]*tensor.Tensor4, n)
	e.t4Pre = make([]*tensor.Tensor4, n)
	e.matIn = make([]*tensor.Matrix, n)
	e.matPre = make([]*tensor.Matrix, n)
	e.arg = make([][]int, n)
	e.denom = make([][]float64, n)
	return e
}

// step runs one synchronous training iteration and returns the batch loss.
func (e *modelEngine) step(world *mpi.Comm, opt nn.Optimizer, x *tensor.Tensor4, labels []int) float64 {
	logits := e.forward(world, x)
	loss, d := nn.SoftmaxCrossEntropy(logits, labels)
	grads := e.backward(world, d)
	opt.Step(e.shards, grads)
	return loss
}

func (e *modelEngine) forward(world *mpi.Comm, x *tensor.Tensor4) *tensor.Matrix {
	cur4 := x
	var cur *tensor.Matrix
	for li := range e.spec.Layers {
		l := &e.spec.Layers[li]
		switch l.Kind {
		case nn.Conv:
			e.t4In[li] = cur4
			local := nn.ConvForward(cur4, e.shards[e.slot[li]], l.KH, l.KW, l.Stride, l.Pad)
			pre := gatherChannels(world, local, l.OutC) // the Eq. 3 all-gather
			e.t4Pre[li] = pre
			if li != e.lastW {
				cur4 = nn.ReLUForward4(pre)
			} else {
				cur4 = pre
			}
		case nn.Pool:
			e.t4In[li] = cur4
			y, arg := nn.MaxPoolForward(cur4, l.KH, l.KW, l.Stride)
			e.arg[li] = arg
			cur4 = y
		case nn.LRN:
			e.t4In[li] = cur4
			y, denom := nn.LRNForward(cur4)
			e.denom[li] = denom
			cur4 = y
		case nn.Dropout:
			// identity
		case nn.FC:
			if cur == nil {
				cur = cur4.AsMatrix()
				cur4 = nil
			}
			e.matIn[li] = cur
			local := nn.DenseForward(e.shards[e.slot[li]], cur)
			pre := gatherMatrixRows(world, local, l.OutN) // the Eq. 3 all-gather
			e.matPre[li] = pre
			if li != e.lastW {
				cur = nn.ReLUForward(pre)
			} else {
				cur = pre
			}
		}
	}
	return cur
}

func (e *modelEngine) backward(world *mpi.Comm, dlogits *tensor.Matrix) []*tensor.Matrix {
	grads := make([]*tensor.Matrix, len(e.shards))
	dcur := dlogits
	var dcur4 *tensor.Tensor4
	layers := e.spec.Layers
	for li := len(layers) - 1; li >= 0; li-- {
		l := &layers[li]
		switch l.Kind {
		case nn.FC:
			if li != e.lastW {
				dcur = nn.ReLUBackward(dcur, e.matPre[li])
			}
			dyShard := rowShard(dcur, e.p, e.rank)
			grads[e.slot[li]] = nn.DenseGradWeights(dyShard, e.matIn[li])
			if li == 0 {
				continue
			}
			partial := nn.DenseBackwardInput(e.shards[e.slot[li]], dyShard)
			dcur = allReduceMat(world, partial) // the Eq. 3 ∆X all-reduce
			if prev := prevSpatialShape(e.spec, li); prev != nil {
				dcur4 = tensor.FromMatrix(dcur, prev.C, prev.H, prev.W)
				dcur = nil
			}
		case nn.Dropout:
			// identity
		case nn.LRN:
			dcur4 = nn.LRNBackward(dcur4, e.t4In[li], e.denom[li])
		case nn.Pool:
			dcur4 = nn.MaxPoolBackward(dcur4, e.arg[li], e.t4In[li])
		case nn.Conv:
			if li != e.lastW {
				dcur4 = nn.ReLUBackward4(dcur4, e.t4Pre[li])
			}
			dyShard := channelShard(dcur4, e.p, e.rank)
			grads[e.slot[li]] = nn.ConvGradWeights(e.t4In[li], dyShard, l.KH, l.KW, l.Stride, l.Pad)
			if li == 0 {
				continue
			}
			x := e.t4In[li]
			dymat := nn.Tensor4ToConvMat(dyShard)
			dcols := tensor.MatMulTN(e.shards[e.slot[li]], dymat)
			partial := tensor.Col2Im(dcols, x.N, x.C, x.H, x.W, l.KH, l.KW, l.Stride, l.Pad)
			dcur4 = allReduceT4(world, partial) // the Eq. 3 ∆X all-reduce
		}
	}
	return grads
}

// assemble all-gathers the weight shards back into full matrices.
func (e *modelEngine) assemble(world *mpi.Comm) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(e.shards))
	for i, s := range e.shards {
		out[i] = gatherMatrixRows(world, s, s.Rows*e.p)
	}
	return out
}

// prevSpatialShape mirrors nn.Model's flatten bookkeeping.
func prevSpatialShape(spec *nn.Network, li int) *nn.Shape {
	for j := li - 1; j >= 0; j-- {
		switch spec.Layers[j].Kind {
		case nn.Conv, nn.Pool, nn.LRN:
			s := spec.Layers[j].Out
			return &s
		case nn.FC:
			return nil
		}
	}
	if spec.Input.H > 1 || spec.Input.W > 1 {
		s := spec.Input
		return &s
	}
	return nil
}
