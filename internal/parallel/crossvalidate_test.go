package parallel

import (
	"math"
	"testing"

	"dnnparallel/internal/costmodel"
	"dnnparallel/internal/data"
	"dnnparallel/internal/grid"
	"dnnparallel/internal/machine"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
)

// These tests tie the executable engines to the analytic cost model: the
// virtual communication time measured on the simulated cluster must match
// the Eq. 3/4/8 bandwidth predictions. Latency terms are zeroed (α = 0)
// because the engines batch gradients into one flattened all-reduce while
// the formulas charge one per layer; the bandwidth (volume) terms are the
// content of the paper's analysis.

// bwMachine has zero latency so only β terms matter.
func bwMachine() machine.Machine {
	return machine.Machine{Name: "bw-only", Alpha: 0, Beta: 1e-9, PeakFlops: 1e12}
}

// steadyStateComm measures per-step communication by running k and 2k
// steps and differencing, cancelling one-time costs (final weight
// assembly gathers).
func steadyStateComm(t *testing.T, run func(steps int) Result, k int) float64 {
	t.Helper()
	short := run(k)
	long := run(2 * k)
	var cShort, cLong float64
	for _, s := range short.Stats {
		if s.CommTime > cShort {
			cShort = s.CommTime
		}
	}
	for _, s := range long.Stats {
		if s.CommTime > cLong {
			cLong = s.CommTime
		}
	}
	return (cLong - cShort) / float64(k)
}

// TestBatchEngineCommMatchesEq4: the batch engine's measured per-step
// communication equals the Eq. 4 bandwidth term (one all-reduce of all
// weights; the +P words of the loss reduction are negligible).
func TestBatchEngineCommMatchesEq4(t *testing.T) {
	spec := nn.MLP("m", 64, 32, 16, 8)
	ds := data.Synthetic(64, spec.Input, 8, 7)
	m := bwMachine()
	const p = 4
	run := func(steps int) Result {
		cfg := Config{Spec: spec, Seed: 3, LR: 0.01, Steps: steps, BatchSize: 16}
		res, err := RunBatch(mpi.NewWorld(p, m), cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	measured := steadyStateComm(t, run, 3)
	predicted := costmodel.PureBatch(spec, 16, p, m).TotalSeconds()
	if rel := math.Abs(measured-predicted) / predicted; rel > 0.01 {
		t.Fatalf("batch engine comm %.6g vs Eq. 4 %.6g (rel %.3f)", measured, predicted, rel)
	}
}

// TestModelEngineCommMatchesEq3: the model engine's measured per-step
// communication equals the Eq. 3 bandwidth terms — per-layer activation
// all-gathers plus ∆X all-reduces skipping the first layer.
func TestModelEngineCommMatchesEq3(t *testing.T) {
	spec := nn.MLP("m", 64, 32, 16, 8)
	ds := data.Synthetic(64, spec.Input, 8, 11)
	m := bwMachine()
	const p = 4
	run := func(steps int) Result {
		cfg := Config{Spec: spec, Seed: 5, LR: 0.01, Steps: steps, BatchSize: 16}
		res, err := RunModel(mpi.NewWorld(p, m), cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	measured := steadyStateComm(t, run, 3)
	predicted := costmodel.PureModel(spec, 16, p, m).TotalSeconds()
	if rel := math.Abs(measured-predicted) / predicted; rel > 0.01 {
		t.Fatalf("model engine comm %.6g vs Eq. 3 %.6g (rel %.3f)", measured, predicted, rel)
	}
}

// TestIntegratedEngineCommMatchesEq8: the 1.5D engine's measured per-step
// communication on a Pr × Pc grid equals the Eq. 8 bandwidth terms.
func TestIntegratedEngineCommMatchesEq8(t *testing.T) {
	spec := nn.MLP("m", 64, 32, 16, 8)
	ds := data.Synthetic(64, spec.Input, 8, 13)
	m := bwMachine()
	for _, g := range []grid.Grid{{Pr: 2, Pc: 2}, {Pr: 4, Pc: 2}, {Pr: 2, Pc: 4}} {
		run := func(steps int) Result {
			cfg := Config{Spec: spec, Seed: 7, LR: 0.01, Steps: steps, BatchSize: 16}
			res, err := RunIntegrated15D(mpi.NewWorld(g.P(), m), cfg, ds, g)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		measured := steadyStateComm(t, run, 3)
		predicted := costmodel.Integrated(spec, 16, g, m).TotalSeconds()
		// The loss all-reduce over the row group adds a few words; allow 2%.
		if rel := math.Abs(measured-predicted) / predicted; rel > 0.02 {
			t.Fatalf("grid %v: 1.5D engine comm %.6g vs Eq. 8 %.6g (rel %.3f)", g, measured, predicted, rel)
		}
	}
}

// TestDomainEngineHaloVolumeMatchesEq7: the domain engine's measured
// words-on-the-wire for the conv front match the Eq. 7 halo volumes:
// per conv layer and step, each interior boundary moves
// B·X_W·X_C·⌊k/2⌋ words forward and the same backward, and the weight
// all-reduce moves 2·(P−1)/P·|W| words per rank.
func TestDomainEngineHaloVolumeMatchesEq7(t *testing.T) {
	spec := domainNet()
	ds := data.Synthetic(32, spec.Input, 8, 17)
	m := bwMachine()
	const p, b = 2, 8
	run := func(steps int) int64 {
		cfg := Config{Spec: spec, Seed: 9, LR: 0.01, Steps: steps, BatchSize: b}
		res, err := RunDomain(mpi.NewWorld(p, m), cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		var words int64
		for _, s := range res.Stats {
			words += s.WordsSent
		}
		return words
	}
	perStep := run(6) - run(3)
	perStepPerStepCount := float64(perStep) / 3

	// Expected per step, summed over all ranks:
	var want float64
	for k, li := range spec.ConvLayers() {
		l := &spec.Layers[li]
		if l.KH/2 == 0 {
			continue
		}
		// One interior boundary (p=2): both sides send halo rows forward;
		// the backward halo-gradient exchange happens for every conv layer
		// except the first (no ∆X is propagated past layer 1, matching the
		// i ≥ 2 bound of Eq. 3 that Eq. 7 inherits in our engines).
		fwd := float64(b) * float64(l.In.W*l.In.C) * float64(l.KH/2)
		want += 2 * fwd
		if k > 0 {
			want += 2 * fwd
		}
		// Weight all-reduce: each rank sends 2·(p−1)/p·|W| words.
		want += float64(p) * 2 * float64(p-1) / float64(p) * float64(l.Weights())
	}
	// FC path: the row gather before fc1 moves (p−1)/p·out words per rank
	// (Bruck), i.e. out/2 each at p=2, where out = B·d_flatten.
	flat := float64(b) * float64(spec.Layers[2].Out.Size())
	want += float64(p) * float64(p-1) / float64(p) * flat

	if rel := math.Abs(perStepPerStepCount-want) / want; rel > 0.02 {
		t.Fatalf("domain engine words/step = %.0f, Eq. 7 accounting = %.0f (rel %.3f)",
			perStepPerStepCount, want, rel)
	}
}
