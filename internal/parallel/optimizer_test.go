package parallel

import (
	"testing"

	"dnnparallel/internal/data"
	"dnnparallel/internal/grid"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
)

// TestMomentumExactAcrossEngines: gradient-exactness extends to stateful
// first-order methods — every engine reproduces the serial *momentum*
// trajectory, because the element-wise update commutes with sharding
// (the paper's "generalizes to other first-order methods" claim, made
// executable).
func TestMomentumExactAcrossEngines(t *testing.T) {
	spec := domainNet()
	ds := data.Synthetic(48, spec.Input, 8, 201)
	cfg := Config{
		Spec: spec, Seed: 7, LR: 0.05, Steps: 6, BatchSize: 12,
		NewOptimizer: func() nn.Optimizer { return &nn.Momentum{LR: 0.05, Mu: 0.9} },
	}
	want := serialOracle(t, cfg, ds)

	got, err := RunBatch(mpi.NewWorld(4, testMachine()), cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
		t.Fatalf("batch momentum deviates by %g", d)
	}

	got, err = RunDomain(mpi.NewWorld(2, testMachine()), cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
		t.Fatalf("domain momentum deviates by %g", d)
	}

	got, err = RunFullIntegrated(mpi.NewWorld(4, testMachine()), cfg, ds, grid.Grid{Pr: 2, Pc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
		t.Fatalf("full-integrated momentum deviates by %g", d)
	}
}

// TestNesterovExactOnMLPGrids: Nesterov across 1.5D grids matches serial.
func TestNesterovExactOnMLPGrids(t *testing.T) {
	spec := nn.MLP("m", 24, 16, 8, 4)
	ds := data.Synthetic(64, spec.Input, 4, 207)
	cfg := Config{
		Spec: spec, Seed: 9, LR: 0.04, Steps: 5, BatchSize: 16,
		NewOptimizer: func() nn.Optimizer { return &nn.Nesterov{LR: 0.04, Mu: 0.8} },
	}
	want := serialOracle(t, cfg, ds)
	for _, g := range []grid.Grid{{Pr: 1, Pc: 4}, {Pr: 2, Pc: 2}, {Pr: 4, Pc: 1}} {
		got, err := RunIntegrated15D(mpi.NewWorld(g.P(), testMachine()), cfg, ds, g)
		if err != nil {
			t.Fatalf("grid %v: %v", g, err)
		}
		if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
			t.Fatalf("grid %v: Nesterov deviates by %g", g, d)
		}
	}
}

// TestModelEngineMomentum: sharded momentum state in the pure model
// engine (velocity lives with the weight shard).
func TestModelEngineMomentum(t *testing.T) {
	spec := nn.MLP("m", 20, 16, 8, 4)
	ds := data.Synthetic(48, spec.Input, 4, 211)
	cfg := Config{
		Spec: spec, Seed: 11, LR: 0.05, Steps: 5, BatchSize: 12,
		NewOptimizer: func() nn.Optimizer { return &nn.Momentum{LR: 0.05, Mu: 0.9} },
	}
	want := serialOracle(t, cfg, ds)
	got, err := RunModel(mpi.NewWorld(4, testMachine()), cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
		t.Fatalf("model momentum deviates by %g", d)
	}
}
