package parallel

import (
	"math"
	"testing"

	"dnnparallel/internal/data"
	"dnnparallel/internal/grid"
	"dnnparallel/internal/machine"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
	"dnnparallel/internal/tensor"
)

// The engines compute the same synchronous SGD iteration as the serial
// reference; only floating-point summation order differs (partial sums
// reduced by collectives). After a handful of steps the weight trajectories
// must agree to tight tolerance.
const trajTol = 1e-9

func testMachine() machine.Machine {
	return machine.Machine{Name: "test", Alpha: 1e-6, Beta: 1e-9, PeakFlops: 1e12}
}

// domainNet is a conv+fc network satisfying the slab constraints (heights
// divisible by up to 4, halo-compatible convs, aligned pools).
func domainNet() *nn.Network {
	n := &nn.Network{
		Name:  "DomainNet",
		Input: nn.Shape{H: 16, W: 10, C: 3},
		Layers: []nn.Layer{
			{Kind: nn.Conv, Name: "conv1", KH: 3, KW: 3, Stride: 1, Pad: 1, OutC: 6},
			{Kind: nn.Conv, Name: "conv2", KH: 3, KW: 3, Stride: 1, Pad: 1, OutC: 8},
			{Kind: nn.Pool, Name: "pool1", KH: 2, KW: 2, Stride: 2},
			{Kind: nn.FC, Name: "fc1", OutN: 24},
			{Kind: nn.FC, Name: "fc2", OutN: 8},
		},
	}
	if err := n.Infer(); err != nil {
		panic(err)
	}
	return n
}

// oneByOneDomainNet exercises the zero-halo 1×1 path.
func oneByOneDomainNet() *nn.Network {
	n := &nn.Network{
		Name:  "OneByOneDomain",
		Input: nn.Shape{H: 8, W: 6, C: 4},
		Layers: []nn.Layer{
			{Kind: nn.Conv, Name: "reduce", KH: 1, KW: 1, Stride: 1, OutC: 8},
			{Kind: nn.Conv, Name: "conv", KH: 3, KW: 3, Stride: 1, Pad: 1, OutC: 8},
			{Kind: nn.Conv, Name: "expand", KH: 1, KW: 1, Stride: 1, OutC: 4},
			{Kind: nn.FC, Name: "fc", OutN: 5},
		},
	}
	if err := n.Infer(); err != nil {
		panic(err)
	}
	return n
}

func maxWeightDiff(a, b []*tensor.Matrix) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var worst float64
	for i := range a {
		if d := a[i].MaxAbsDiff(b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func maxLossDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func serialOracle(t *testing.T, cfg Config, ds *data.Dataset) Result {
	t.Helper()
	res, err := RunSerial(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// --- Batch parallelism (Fig. 2) -------------------------------------------

func TestBatchMatchesSerial(t *testing.T) {
	spec := nn.TinyConvNet()
	ds := data.Synthetic(64, spec.Input, 10, 7)
	cfg := Config{Spec: spec, Seed: 3, LR: 0.05, Steps: 5, BatchSize: 16}
	want := serialOracle(t, cfg, ds)
	for _, p := range []int{2, 4, 8, 16} {
		w := mpi.NewWorld(p, testMachine())
		got, err := RunBatch(w, cfg, ds)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
			t.Fatalf("P=%d: batch-parallel weights deviate by %g", p, d)
		}
		if d := maxLossDiff(got.Losses, want.Losses); d > trajTol {
			t.Fatalf("P=%d: batch-parallel losses deviate by %g", p, d)
		}
	}
}

func TestBatchUnevenShards(t *testing.T) {
	spec := nn.MLP("m", 12, 8, 4)
	ds := data.Synthetic(40, spec.Input, 4, 11)
	cfg := Config{Spec: spec, Seed: 5, LR: 0.1, Steps: 4, BatchSize: 10}
	want := serialOracle(t, cfg, ds)
	w := mpi.NewWorld(3, testMachine()) // 10 = 4+3+3: uneven
	got, err := RunBatch(w, cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
		t.Fatalf("uneven shards deviate by %g", d)
	}
}

func TestBatchRejectsPGreaterThanB(t *testing.T) {
	spec := nn.MLP("m", 4, 2)
	ds := data.Synthetic(8, spec.Input, 2, 1)
	w := mpi.NewWorld(8, testMachine())
	if _, err := RunBatch(w, Config{Spec: spec, Seed: 1, LR: 0.1, Steps: 1, BatchSize: 4}, ds); err == nil {
		t.Fatal("P > B should be rejected")
	}
}

// --- Model parallelism (Fig. 1) -------------------------------------------

func TestModelMatchesSerialMLP(t *testing.T) {
	spec := nn.MLP("m", 20, 16, 8, 4)
	ds := data.Synthetic(64, spec.Input, 4, 13)
	cfg := Config{Spec: spec, Seed: 9, LR: 0.08, Steps: 5, BatchSize: 12}
	want := serialOracle(t, cfg, ds)
	for _, p := range []int{2, 4} {
		w := mpi.NewWorld(p, testMachine())
		got, err := RunModel(w, cfg, ds)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
			t.Fatalf("P=%d: model-parallel weights deviate by %g", p, d)
		}
		if d := maxLossDiff(got.Losses, want.Losses); d > trajTol {
			t.Fatalf("P=%d: model-parallel losses deviate by %g", p, d)
		}
	}
}

func TestModelMatchesSerialConvNet(t *testing.T) {
	spec := nn.TinyConvNet() // conv OutC = 8, fc 32/10… 10 not divisible by 2
	// Use a divisible variant.
	spec = &nn.Network{
		Name:  "TinyConvDiv",
		Input: nn.Shape{H: 12, W: 12, C: 3},
		Layers: []nn.Layer{
			{Kind: nn.Conv, Name: "conv1", KH: 3, KW: 3, Stride: 1, Pad: 1, OutC: 8},
			{Kind: nn.Pool, Name: "pool1", KH: 2, KW: 2, Stride: 2},
			{Kind: nn.Conv, Name: "conv2", KH: 3, KW: 3, Stride: 1, Pad: 1, OutC: 8},
			{Kind: nn.FC, Name: "fc1", OutN: 16},
			{Kind: nn.FC, Name: "fc2", OutN: 8},
		},
	}
	if err := spec.Infer(); err != nil {
		t.Fatal(err)
	}
	ds := data.Synthetic(32, spec.Input, 8, 17)
	cfg := Config{Spec: spec, Seed: 21, LR: 0.05, Steps: 4, BatchSize: 8}
	want := serialOracle(t, cfg, ds)
	for _, p := range []int{2, 4} {
		w := mpi.NewWorld(p, testMachine())
		got, err := RunModel(w, cfg, ds)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
			t.Fatalf("P=%d: conv model-parallel weights deviate by %g", p, d)
		}
	}
}

func TestModelMatchesSerialWithLRN(t *testing.T) {
	spec := &nn.Network{
		Name:  "LRNDiv",
		Input: nn.Shape{H: 8, W: 8, C: 3},
		Layers: []nn.Layer{
			{Kind: nn.Conv, Name: "conv1", KH: 3, KW: 3, Stride: 1, Pad: 1, OutC: 6},
			{Kind: nn.LRN, Name: "lrn1"},
			{Kind: nn.FC, Name: "fc1", OutN: 6},
		},
	}
	if err := spec.Infer(); err != nil {
		t.Fatal(err)
	}
	ds := data.Synthetic(24, spec.Input, 6, 19)
	cfg := Config{Spec: spec, Seed: 23, LR: 0.05, Steps: 3, BatchSize: 6}
	want := serialOracle(t, cfg, ds)
	w := mpi.NewWorld(2, testMachine())
	got, err := RunModel(w, cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
		t.Fatalf("LRN model-parallel weights deviate by %g", d)
	}
}

func TestModelRejectsIndivisible(t *testing.T) {
	spec := nn.MLP("m", 10, 7, 4) // 7 not divisible by 2
	ds := data.Synthetic(8, spec.Input, 4, 1)
	w := mpi.NewWorld(2, testMachine())
	if _, err := RunModel(w, Config{Spec: spec, Seed: 1, LR: 0.1, Steps: 1, BatchSize: 4}, ds); err == nil {
		t.Fatal("indivisible OutN should be rejected")
	}
}

// --- Domain parallelism (Fig. 3) ------------------------------------------

func TestDomainMatchesSerial(t *testing.T) {
	spec := domainNet()
	ds := data.Synthetic(32, spec.Input, 8, 29)
	cfg := Config{Spec: spec, Seed: 31, LR: 0.05, Steps: 4, BatchSize: 8}
	want := serialOracle(t, cfg, ds)
	for _, p := range []int{2, 4} {
		w := mpi.NewWorld(p, testMachine())
		got, err := RunDomain(w, cfg, ds)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
			t.Fatalf("P=%d: domain-parallel weights deviate by %g", p, d)
		}
		if d := maxLossDiff(got.Losses, want.Losses); d > trajTol {
			t.Fatalf("P=%d: domain-parallel losses deviate by %g", p, d)
		}
	}
}

func TestDomainOneByOneConvNoHaloTraffic(t *testing.T) {
	spec := oneByOneDomainNet()
	ds := data.Synthetic(16, spec.Input, 5, 37)
	cfg := Config{Spec: spec, Seed: 41, LR: 0.05, Steps: 3, BatchSize: 4}
	want := serialOracle(t, cfg, ds)
	w := mpi.NewWorld(2, testMachine())
	got, err := RunDomain(w, cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
		t.Fatalf("1×1 domain weights deviate by %g", d)
	}
}

func TestDomainRejectsBadGeometry(t *testing.T) {
	// Even kernel: not halo-decomposable by this stack.
	bad := &nn.Network{
		Name:  "bad",
		Input: nn.Shape{H: 8, W: 8, C: 1},
		Layers: []nn.Layer{
			{Kind: nn.Conv, Name: "c", KH: 2, KW: 2, Stride: 1, Pad: 0, OutC: 2},
			{Kind: nn.FC, Name: "f", OutN: 2},
		},
	}
	if err := bad.Infer(); err != nil {
		t.Fatal(err)
	}
	ds := data.Synthetic(8, bad.Input, 2, 1)
	w := mpi.NewWorld(2, testMachine())
	if _, err := RunDomain(w, Config{Spec: bad, Seed: 1, LR: 0.1, Steps: 1, BatchSize: 4}, ds); err == nil {
		t.Fatal("even kernel should be rejected")
	}
}

// --- Integrated 1.5D (Fig. 5) ---------------------------------------------

func TestIntegrated15DMatchesSerialAllGrids(t *testing.T) {
	spec := nn.MLP("m", 24, 16, 8, 4)
	ds := data.Synthetic(96, spec.Input, 4, 43)
	cfg := Config{Spec: spec, Seed: 47, LR: 0.07, Steps: 5, BatchSize: 24}
	want := serialOracle(t, cfg, ds)
	for _, g := range []grid.Grid{{Pr: 1, Pc: 6}, {Pr: 2, Pc: 3}, {Pr: 2, Pc: 2}, {Pr: 4, Pc: 2}, {Pr: 4, Pc: 1}, {Pr: 1, Pc: 1}} {
		w := mpi.NewWorld(g.P(), testMachine())
		got, err := RunIntegrated15D(w, cfg, ds, g)
		if err != nil {
			t.Fatalf("grid %v: %v", g, err)
		}
		if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
			t.Fatalf("grid %v: 1.5D weights deviate by %g", g, d)
		}
		if d := maxLossDiff(got.Losses, want.Losses); d > trajTol {
			t.Fatalf("grid %v: 1.5D losses deviate by %g", g, d)
		}
	}
}

func TestIntegrated15DPureEndsMatchOtherEngines(t *testing.T) {
	// 1×P ≡ batch engine; P×1 ≡ model engine — the spectrum claim.
	spec := nn.MLP("m", 16, 8, 4)
	ds := data.Synthetic(48, spec.Input, 4, 53)
	cfg := Config{Spec: spec, Seed: 59, LR: 0.06, Steps: 4, BatchSize: 12}
	wb := mpi.NewWorld(4, testMachine())
	batch, err := RunBatch(wb, cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	wi := mpi.NewWorld(4, testMachine())
	ibatch, err := RunIntegrated15D(wi, cfg, ds, grid.Grid{Pr: 1, Pc: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(batch.Weights, ibatch.Weights); d > trajTol {
		t.Fatalf("1×4 grid vs batch engine deviate by %g", d)
	}
	wm := mpi.NewWorld(4, testMachine())
	model, err := RunModel(wm, cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	wi2 := mpi.NewWorld(4, testMachine())
	imodel, err := RunIntegrated15D(wi2, cfg, ds, grid.Grid{Pr: 4, Pc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(model.Weights, imodel.Weights); d > trajTol {
		t.Fatalf("4×1 grid vs model engine deviate by %g", d)
	}
}

func TestIntegrated15DValidation(t *testing.T) {
	spec := nn.MLP("m", 8, 4)
	ds := data.Synthetic(8, spec.Input, 4, 1)
	cfg := Config{Spec: spec, Seed: 1, LR: 0.1, Steps: 1, BatchSize: 5}
	w := mpi.NewWorld(4, testMachine())
	if _, err := RunIntegrated15D(w, cfg, ds, grid.Grid{Pr: 2, Pc: 2}); err == nil {
		t.Fatal("B=5 not divisible by Pc=2 should be rejected")
	}
	if _, err := RunIntegrated15D(w, cfg, ds, grid.Grid{Pr: 2, Pc: 3}); err == nil {
		t.Fatal("grid/world mismatch should be rejected")
	}
	conv := nn.TinyConvNet()
	dsc := data.Synthetic(8, conv.Input, 10, 1)
	if _, err := RunIntegrated15D(w, Config{Spec: conv, Seed: 1, LR: 0.1, Steps: 1, BatchSize: 4}, dsc, grid.Grid{Pr: 2, Pc: 2}); err == nil {
		t.Fatal("conv network should be rejected by the FC-only 1.5D engine")
	}
}

// --- Fully integrated model+batch+domain (Eq. 9) --------------------------

func TestFullIntegratedMatchesSerialAllGrids(t *testing.T) {
	spec := domainNet()
	ds := data.Synthetic(48, spec.Input, 8, 61)
	cfg := Config{Spec: spec, Seed: 67, LR: 0.05, Steps: 4, BatchSize: 12}
	want := serialOracle(t, cfg, ds)
	for _, g := range []grid.Grid{{Pr: 2, Pc: 2}, {Pr: 2, Pc: 3}, {Pr: 4, Pc: 2}, {Pr: 2, Pc: 1}, {Pr: 1, Pc: 4}} {
		w := mpi.NewWorld(g.P(), testMachine())
		got, err := RunFullIntegrated(w, cfg, ds, g)
		if err != nil {
			t.Fatalf("grid %v: %v", g, err)
		}
		if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
			t.Fatalf("grid %v: fully integrated weights deviate by %g", g, d)
		}
		if d := maxLossDiff(got.Losses, want.Losses); d > trajTol {
			t.Fatalf("grid %v: fully integrated losses deviate by %g", g, d)
		}
	}
}

// TestFullIntegratedBeyondBatch: more processes than samples per batch —
// the regime pure batch cannot reach (Fig. 10), P = 8 > B = 4.
func TestFullIntegratedBeyondBatch(t *testing.T) {
	spec := domainNet()
	ds := data.Synthetic(16, spec.Input, 8, 71)
	cfg := Config{Spec: spec, Seed: 73, LR: 0.05, Steps: 3, BatchSize: 4}
	want := serialOracle(t, cfg, ds)
	g := grid.Grid{Pr: 2, Pc: 4} // P = 8 > B = 4 would be infeasible for batch
	w := mpi.NewWorld(g.P(), testMachine())
	got, err := RunFullIntegrated(w, cfg, ds, g)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(got.Weights, want.Weights); d > trajTol {
		t.Fatalf("beyond-batch weights deviate by %g", d)
	}
	// And the batch engine indeed cannot run this configuration.
	wb := mpi.NewWorld(8, testMachine())
	if _, err := RunBatch(wb, cfg, ds); err == nil {
		t.Fatal("batch engine should reject P=8 > B=4")
	}
}

// --- Cross-cutting ---------------------------------------------------------

// TestTrainingConvergesUnderEveryEngine: beyond gradient-exactness, each
// engine actually learns (loss at the end below the start).
func TestTrainingConvergesUnderEveryEngine(t *testing.T) {
	spec := domainNet()
	ds := data.Synthetic(64, spec.Input, 8, 79)
	cfg := Config{Spec: spec, Seed: 83, LR: 0.08, Steps: 12, BatchSize: 16}
	check := func(name string, res Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
		if last >= first {
			t.Fatalf("%s: loss did not decrease (%g → %g)", name, first, last)
		}
	}
	serial, err := RunSerial(cfg, ds)
	check("serial", serial, err)
	got, err := RunBatch(mpi.NewWorld(4, testMachine()), cfg, ds)
	check("batch", got, err)
	got, err = RunDomain(mpi.NewWorld(2, testMachine()), cfg, ds)
	check("domain", got, err)
	got, err = RunFullIntegrated(mpi.NewWorld(4, testMachine()), cfg, ds, grid.Grid{Pr: 2, Pc: 2})
	check("full-integrated", got, err)
}

// TestCommVolumeOrdering: at equal P, the measured words-on-the-wire obey
// the paper's qualitative ordering on an FC network at small batch:
// model parallel moves more data than batch parallel when B·d > |W| and
// less when B·d < |W| (Eq. 5's logic, measured rather than predicted).
func TestCommVolumeOrdering(t *testing.T) {
	// |W| = 64·64 + 64·64 = 8192 per layer pair; B·d = 4·64 = 256 ≪ |W|:
	// model parallelism should move fewer words.
	spec := nn.MLP("m", 64, 64, 64)
	ds := data.Synthetic(16, spec.Input, 8, 89)
	cfg := Config{Spec: spec, Seed: 97, LR: 0.05, Steps: 2, BatchSize: 4}
	wb := mpi.NewWorld(4, testMachine())
	batch, err := RunBatch(wb, cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	wm := mpi.NewWorld(4, testMachine())
	model, err := RunModel(wm, cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	var wordsBatch, wordsModel int64
	for _, s := range batch.Stats {
		wordsBatch += s.WordsSent
	}
	for _, s := range model.Stats {
		wordsModel += s.WordsSent
	}
	if wordsModel >= wordsBatch {
		t.Fatalf("at B=4 on a 64-wide MLP model parallel (%d words) should beat batch (%d words)",
			wordsModel, wordsBatch)
	}
}

// TestStatsPopulated: engines report mpi accounting.
func TestStatsPopulated(t *testing.T) {
	spec := nn.MLP("m", 8, 4)
	ds := data.Synthetic(16, spec.Input, 4, 101)
	cfg := Config{Spec: spec, Seed: 103, LR: 0.05, Steps: 2, BatchSize: 8}
	res, err := RunBatch(mpi.NewWorld(2, testMachine()), cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("want 2 stats records, got %d", len(res.Stats))
	}
	for _, s := range res.Stats {
		if s.WordsSent == 0 || s.CommTime <= 0 {
			t.Fatalf("rank %d has empty accounting: %+v", s.Rank, s)
		}
	}
}
