// Package checkpoint provides weight snapshotting for the training
// engines — the operational piece a downstream user of a distributed
// trainer needs: persist the (fully assembled) weights at a step, resume
// later, and land on the identical trajectory.
//
// Snapshots store the assembled weight list, so any engine can resume a
// run started under any other engine: the paper's point that every
// parallelization computes the same iteration makes checkpoints fully
// interchangeable across strategies.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"dnnparallel/internal/tensor"
)

// Snapshot is a point-in-time view of a training run.
type Snapshot struct {
	// Network is the spec name (sanity-checked on resume).
	Network string
	// Step is the number of completed SGD steps.
	Step int
	// Seed is the run's initialization seed (for provenance).
	Seed int64
	// Weights is the assembled weight list in nn.Model order.
	Weights []*tensor.Matrix
}

// Save writes the snapshot to w.
func Save(w io.Writer, s *Snapshot) error {
	if s == nil || len(s.Weights) == 0 {
		return fmt.Errorf("checkpoint: empty snapshot")
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot from r and validates its shape invariants.
func Load(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	for i, m := range s.Weights {
		if m == nil || m.Rows <= 0 || m.Cols <= 0 || len(m.Data) != m.Rows*m.Cols {
			return nil, fmt.Errorf("checkpoint: weight %d malformed", i)
		}
	}
	return &s, nil
}

// SaveFile writes the snapshot to path atomically (write-then-rename).
func SaveFile(path string, s *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := Save(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Load(f)
}
