package checkpoint

import (
	"bytes"
	"path/filepath"
	"testing"

	"dnnparallel/internal/data"
	"dnnparallel/internal/grid"
	"dnnparallel/internal/machine"
	"dnnparallel/internal/mpi"
	"dnnparallel/internal/nn"
	"dnnparallel/internal/parallel"
	"dnnparallel/internal/tensor"
)

func TestRoundTripExact(t *testing.T) {
	s := &Snapshot{
		Network: "TinyConvNet", Step: 7, Seed: 42,
		Weights: []*tensor.Matrix{tensor.Random(3, 5, 1, 1), tensor.Random(8, 2, 1, 2)},
	}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Network != s.Network || got.Step != s.Step || got.Seed != s.Seed {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for i := range s.Weights {
		if got.Weights[i].MaxAbsDiff(s.Weights[i]) != 0 {
			t.Fatalf("weight %d not bit-identical after round trip", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	s := &Snapshot{Network: "m", Step: 1, Weights: []*tensor.Matrix{tensor.Random(2, 2, 1, 3)}}
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights[0].MaxAbsDiff(s.Weights[0]) != 0 {
		t.Fatal("file round trip changed weights")
	}
}

func TestRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage input should fail")
	}
	if err := Save(&bytes.Buffer{}, &Snapshot{}); err == nil {
		t.Fatal("empty snapshot should fail")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("missing file should fail")
	}
}

// TestResumeMatchesUninterrupted: train 3+3 steps through a snapshot and
// land on the same weights as 6 uninterrupted steps (plain SGD is
// stateless, so the snapshot captures the full trainer state).
func TestResumeMatchesUninterrupted(t *testing.T) {
	spec := nn.TinyConvNet()
	ds := data.Synthetic(32, spec.Input, 10, 9)
	x := func(step int) (*tensor.Tensor4, []int) { return ds.Batch(step, 8) }

	full := nn.NewModel(spec, 5)
	for s := 0; s < 6; s++ {
		xb, lb := x(s)
		_, g := full.ForwardBackward(xb, lb)
		full.ApplySGD(g, 0.05)
	}

	half := nn.NewModel(spec, 5)
	for s := 0; s < 3; s++ {
		xb, lb := x(s)
		_, g := half.ForwardBackward(xb, lb)
		half.ApplySGD(g, 0.05)
	}
	var buf bytes.Buffer
	if err := Save(&buf, &Snapshot{Network: spec.Name, Step: 3, Seed: 5, Weights: half.CloneWeights()}); err != nil {
		t.Fatal(err)
	}
	snap, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed := nn.NewModel(spec, 5)
	resumed.SetWeights(snap.Weights)
	for s := snap.Step; s < 6; s++ {
		xb, lb := x(s)
		_, g := resumed.ForwardBackward(xb, lb)
		resumed.ApplySGD(g, 0.05)
	}
	for i := range full.Weights {
		if d := full.Weights[i].MaxAbsDiff(resumed.Weights[i]); d != 0 {
			t.Fatalf("resumed trajectory deviates at weight %d by %g", i, d)
		}
	}
}

// TestCrossEngineResume: a snapshot taken from a distributed run resumes
// serially onto the same trajectory — checkpoints are interchangeable
// across parallelization strategies because they all compute the same
// iteration.
func TestCrossEngineResume(t *testing.T) {
	spec := nn.MLP("m", 16, 8, 4)
	ds := data.Synthetic(32, spec.Input, 4, 11)
	cfg := parallel.Config{Spec: spec, Seed: 7, LR: 0.05, Steps: 3, BatchSize: 8}
	m := machine.Machine{Name: "t", Alpha: 1e-6, Beta: 1e-9, PeakFlops: 1}

	dist, err := parallel.RunIntegrated15D(mpi.NewWorld(4, m), cfg, ds, grid.Grid{Pr: 2, Pc: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, &Snapshot{Network: spec.Name, Step: 3, Weights: dist.Weights}); err != nil {
		t.Fatal(err)
	}
	snap, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Continue serially from the distributed snapshot…
	resumed := nn.NewModel(spec, 7)
	resumed.SetWeights(snap.Weights)
	for s := 3; s < 6; s++ {
		xb, lb := ds.Batch(s, 8)
		_, g := resumed.ForwardBackward(xb, lb)
		resumed.ApplySGD(g, 0.05)
	}
	// …and compare with six uninterrupted serial steps.
	serialCfg := cfg
	serialCfg.Steps = 6
	want, err := parallel.RunSerial(serialCfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Weights {
		if d := want.Weights[i].MaxAbsDiff(resumed.Weights[i]); d > 1e-9 {
			t.Fatalf("cross-engine resume deviates at weight %d by %g", i, d)
		}
	}
}
