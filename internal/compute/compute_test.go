package compute

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"dnnparallel/internal/grid"
	"dnnparallel/internal/nn"
)

// TestFig4ShapeMinimumAt256 pins the calibrated Fig. 4 shape: one-epoch
// AlexNet time is minimized at B = 256 over the paper's sweep
// {1, 2, 4, …, 2048}.
func TestFig4ShapeMinimumAt256(t *testing.T) {
	c := KNLCaffe()
	net := nn.AlexNet()
	const n = 1200000
	bestB, bestT := 0, math.Inf(1)
	for b := 1; b <= 2048; b *= 2 {
		if tt := c.EpochTime(net, b, n); tt < bestT {
			bestB, bestT = b, tt
		}
	}
	if bestB != 256 {
		t.Fatalf("epoch-time minimum at B = %d, paper measured 256", bestB)
	}
}

// TestFig4Spread: the paper's curve spans roughly an order of magnitude
// between B = 1 and the minimum (log-scale axis 10^3.5 … 10^4.5).
func TestFig4Spread(t *testing.T) {
	c := KNLCaffe()
	net := nn.AlexNet()
	const n = 1200000
	t1 := c.EpochTime(net, 1, n)
	t256 := c.EpochTime(net, 256, n)
	if ratio := t1 / t256; ratio < 5 || ratio > 30 {
		t.Fatalf("epoch-time spread B=1/B=256 = %g, want ≈10 (5–30 accepted)", ratio)
	}
	// Large batches must rise again (the right side of Fig. 4).
	t2048 := c.EpochTime(net, 2048, n)
	if t2048 <= t256 {
		t.Fatalf("B=2048 (%g) should be slower than B=256 (%g)", t2048, t256)
	}
}

// TestEfficiencyMonotoneThenSpills: efficiency rises with batch size up to
// the spill region then declines.
func TestEfficiencyMonotoneThenSpills(t *testing.T) {
	c := KNLCaffe()
	prev := 0.0
	for b := 1.0; b <= 256; b *= 2 {
		e := c.Efficiency(b)
		if e <= prev {
			t.Fatalf("efficiency not increasing at b=%g", b)
		}
		if e <= 0 || e > c.EffMax {
			t.Fatalf("efficiency %g out of (0, EffMax]", e)
		}
		prev = e
	}
	if c.Efficiency(4096) >= c.Efficiency(512) {
		t.Fatal("efficiency should decline in the spill region")
	}
}

// TestGridIterTimeLimits: a 1×1 grid reproduces the single-process
// iteration time; scaling P with fixed local batch strictly reduces
// per-process compute.
func TestGridIterTimeLimits(t *testing.T) {
	c := KNLCaffe()
	net := nn.AlexNet()
	single := c.IterTime(net, 256)
	viaGrid := c.GridIterTime(net, 256, grid.Grid{Pr: 1, Pc: 1})
	if math.Abs(single-viaGrid) > 1e-12*single {
		t.Fatalf("1×1 grid iter time %g ≠ single-process %g", viaGrid, single)
	}
	t8 := c.GridIterTime(net, 2048, grid.Grid{Pr: 1, Pc: 8})
	t64 := c.GridIterTime(net, 2048, grid.Grid{Pr: 1, Pc: 64})
	if t64 >= t8 {
		t.Fatalf("more processes should cut compute: P=8 %g vs P=64 %g", t8, t64)
	}
}

// TestGridIterTimeModelShardCutsUpdate: increasing Pr at fixed Pc shrinks
// the weight-update term (each process owns 1/Pr of W).
func TestGridIterTimeModelShardCutsUpdate(t *testing.T) {
	c := KNLCaffe()
	net := nn.AlexNet()
	f := func(prRaw uint8) bool {
		pr := 1 << (1 + int(prRaw)%6)
		a := c.GridIterTime(net, 1024, grid.Grid{Pr: pr, Pc: 8})
		b := c.GridIterTime(net, 1024, grid.Grid{Pr: 2 * pr, Pc: 8})
		return b < a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestComputeDominatesAtSmallP / comm at large P: the Fig. 6 narrative.
// (Communication values come from costmodel; here we just check the
// compute side scales the way the narrative requires.)
func TestComputeScalesDownWithP(t *testing.T) {
	c := KNLCaffe()
	net := nn.AlexNet()
	tP8 := c.GridIterTime(net, 2048, grid.Grid{Pr: 1, Pc: 8})
	tP512 := c.GridIterTime(net, 2048, grid.Grid{Pr: 1, Pc: 512})
	if tP8 < 10*tP512 {
		t.Fatalf("compute should fall ≳10× from P=8 (%g) to P=512 (%g)", tP8, tP512)
	}
}

func TestEpochTimeIterCount(t *testing.T) {
	c := KNLCaffe()
	net := nn.MLP("m", 16, 8)
	it := c.IterTime(net, 10)
	ep := c.EpochTime(net, 10, 95) // ⌈95/10⌉ = 10 iterations
	if math.Abs(ep-10*it) > 1e-12*ep {
		t.Fatalf("EpochTime = %g, want %g", ep, 10*it)
	}
}

func TestUpdateAndGEMMTimePositive(t *testing.T) {
	c := KNLCaffe()
	if c.UpdateTime(62.4e6) <= 0 || c.GEMMTime(1e9, 64) <= 0 {
		t.Fatal("non-positive time")
	}
	if c.Efficiency(0) <= 0 {
		t.Fatal("degenerate efficiency must stay positive")
	}
}

// TestCalibrateLocalProducesSaneModel: the measured-host calibration runs
// quickly and yields a physically plausible model whose epoch curve keeps
// the Fig. 4 U-shape.
func TestCalibrateLocalProducesSaneModel(t *testing.T) {
	c := CalibrateLocal(96, 200*time.Millisecond)
	if c.Peak <= 0 || c.Peak > 1e16 {
		t.Fatalf("calibrated peak %g implausible", c.Peak)
	}
	if c.BHalf <= 0 || c.BHalf > 256 {
		t.Fatalf("calibrated BHalf %g implausible", c.BHalf)
	}
	// Efficiency must still saturate monotonically before the spill.
	if c.Efficiency(64) <= c.Efficiency(1) {
		t.Fatal("calibrated efficiency not increasing")
	}
	// And the epoch curve keeps its qualitative shape: large-batch spill
	// slower than the mid-range.
	net := nn.MLP("m", 512, 512, 64)
	if c.EpochTime(net, 4096, 100000) <= c.EpochTime(net, 256, 100000) {
		t.Fatal("spill region should still slow very large batches")
	}
}

// TestCalibrateLocalDefaults: zero arguments fall back to sane defaults.
func TestCalibrateLocalDefaults(t *testing.T) {
	c := CalibrateLocal(0, 0)
	if c.Peak <= 0 {
		t.Fatal("defaulted calibration failed")
	}
}

// TestGridLayerTimesConservation: the per-layer split plus the residual
// overhead reassembles GridIterTime on every grid shape.
func TestGridLayerTimesConservation(t *testing.T) {
	c := KNLCaffe()
	for _, net := range []*nn.Network{nn.AlexNet(), nn.MLP("m", 512, 1024, 512, 64)} {
		for _, g := range []grid.Grid{{Pr: 1, Pc: 256}, {Pr: 8, Pc: 32}, {Pr: 256, Pc: 1}} {
			times, overhead := c.GridLayerTimes(net, 2048, g)
			if len(times) != len(net.WeightedLayers()) {
				t.Fatalf("%s %v: %d layer times, want %d", net.Name, g, len(times), len(net.WeightedLayers()))
			}
			sum := overhead
			for _, lt := range times {
				if lt.Fwd <= 0 || lt.Bwd <= lt.Fwd {
					t.Fatalf("%s %v layer %s: implausible split fwd=%g bwd=%g", net.Name, g, lt.Name, lt.Fwd, lt.Bwd)
				}
				sum += lt.Fwd + lt.Bwd
			}
			want := c.GridIterTime(net, 2048, g)
			if diff := math.Abs(sum-want) / want; diff > 1e-12 {
				t.Fatalf("%s %v: per-layer sum %g ≠ GridIterTime %g (rel Δ %g)", net.Name, g, sum, want, diff)
			}
		}
	}
}
