// Package compute models per-process computation time for DNN training.
//
// The paper measures one-epoch AlexNet time on a single Intel KNL with
// Intel Caffe for every batch size (its Fig. 4) and feeds that curve into
// the scaling studies. We have no KNL and no Caffe, so this package
// substitutes a parametric execution model with the same observable shape
// (DESIGN.md §2):
//
//	T_iter(b) = FLOPs(b) / (Peak · eff(b)) + |W|/UpdateRate + FixedIter
//	eff(b)    = EffMax · b/(b + BHalf) / (1 + SpillPenalty·(b/SpillB)²)
//
// The three effects this captures, and why they produce Fig. 4's shape:
//   - small-batch GEMMs under-utilize wide vector units (the b/(b+BHalf)
//     saturation) → epoch time falls as B grows;
//   - each iteration pays a fixed SGD-update + framework cost, amortized
//     over larger batches (the N/B·(update+fixed) term) → also falls;
//   - very large batches spill activation working sets out of MCDRAM
//     (the quadratic spill penalty) → epoch time rises again.
//
// The calibration constants in KNLCaffe reproduce the paper's measured
// curve qualitatively: minimum at B = 256 and roughly an order of
// magnitude between B = 1 and the minimum.
package compute

import (
	"dnnparallel/internal/grid"
	"dnnparallel/internal/machine"
	"dnnparallel/internal/nn"
)

// Model is a parametric single-process execution-time model.
type Model struct {
	// Peak is the per-process peak FLOP rate.
	Peak float64
	// EffMax is the large-GEMM fraction of peak actually achieved.
	EffMax float64
	// BHalf is the local batch size at which GEMM efficiency reaches half
	// of its saturated value.
	BHalf float64
	// SpillB and SpillPenalty model the working-set spill beyond fast
	// memory: efficiency is divided by 1 + SpillPenalty·(b/SpillB)².
	SpillB       float64
	SpillPenalty float64
	// UpdateRate is the SGD weight-update throughput in weights/second
	// (memory-bandwidth bound: read w, read ∆w, write w).
	UpdateRate float64
	// FixedIter is the per-iteration framework overhead in seconds.
	FixedIter float64
}

// KNLCaffe returns the model calibrated against the paper's Fig. 4
// (AlexNet, single KNL, Intel Caffe). Peak matches machine.CoriKNL.
func KNLCaffe() Model {
	return Model{
		Peak:         machine.CoriKNL().PeakFlops,
		EffMax:       0.55,
		BHalf:        10,
		SpillB:       896,
		SpillPenalty: 0.35,
		UpdateRate:   7.5e9,
		FixedIter:    5e-3,
	}
}

// Efficiency returns the modeled GEMM efficiency at local batch size b.
func (c Model) Efficiency(b float64) float64 {
	if b <= 0 {
		return c.EffMax / (1 + c.BHalf) // degenerate; avoids division by zero
	}
	sat := c.EffMax * b / (b + c.BHalf)
	spill := 1 + c.SpillPenalty*(b/c.SpillB)*(b/c.SpillB)
	return sat / spill
}

// GEMMTime returns the time to execute flops of GEMM work at local batch b.
func (c Model) GEMMTime(flops, b float64) float64 {
	return flops / (c.Peak * c.Efficiency(b))
}

// UpdateTime returns the SGD update time for the given number of locally
// owned weights.
func (c Model) UpdateTime(weights float64) float64 { return weights / c.UpdateRate }

// IterTime returns the single-process time of one training iteration of
// net at batch size b (the quantity the paper measures per point of
// Fig. 4).
func (c Model) IterTime(net *nn.Network, b int) float64 {
	flops := net.TrainFLOPsPerSample() * float64(b)
	return c.GEMMTime(flops, float64(b)) + c.UpdateTime(float64(net.TotalWeights())) + c.FixedIter
}

// EpochTime returns the single-process one-epoch time for n training
// samples at batch size b: ⌈n/b⌉ iterations (Fig. 4's y-axis).
func (c Model) EpochTime(net *nn.Network, b, n int) float64 {
	iters := (n + b - 1) / b
	return float64(iters) * c.IterTime(net, b)
}

// GridIterTime returns the per-process compute time of one iteration on a
// Pr × Pc grid: every process executes 1/(Pr·Pc) of the batch-B GEMM work
// at local-batch efficiency eff(B/Pc), updates its 1/Pr weight shard, and
// pays the fixed per-iteration overhead. This is the paper's use of the
// Fig. 4 data "for cases with the same computational workload".
func (c Model) GridIterTime(net *nn.Network, B int, g grid.Grid) float64 {
	localB := float64(B) / float64(g.Pc)
	flops := net.TrainFLOPsPerSample() * float64(B) / float64(g.P())
	return c.GEMMTime(flops, localB) +
		c.UpdateTime(float64(net.TotalWeights())/float64(g.Pr)) +
		c.FixedIter
}

// BackpropFraction is the share of GEMM compute spent in backprop: 2 of
// the 3 GEMMs per weighted layer (∆X and ∆W). Fig. 8 may overlap
// communication only with this fraction of the computation.
const BackpropFraction = 2.0 / 3.0

// LayerTime is the per-weighted-layer compute split needed by the
// event-driven timeline simulator (internal/timeline).
type LayerTime struct {
	Index int     // index into Network.Layers
	Name  string  // layer name
	Fwd   float64 // forward GEMM seconds
	Bwd   float64 // ∆X + ∆W GEMM seconds plus the layer's weight-update share
}

// GridLayerTime returns the forward/backward compute split of one
// weighted layer at batch B on a Pr × Pc grid — the per-layer term of
// GridLayerTimes, exposed so stage-partitioned pricing can compute each
// layer's time on its own stage's grid with identical arithmetic.
func (c Model) GridLayerTime(l *nn.Layer, index, B int, g grid.Grid) LayerTime {
	localB := float64(B) / float64(g.Pc)
	scale := float64(B) / float64(g.P())
	fwd := c.GEMMTime(l.ForwardFLOPsPerSample()*scale, localB)
	return LayerTime{
		Index: index,
		Name:  l.Name,
		Fwd:   fwd,
		Bwd:   2*fwd + c.UpdateTime(float64(l.Weights())/float64(g.Pr)),
	}
}

// GridUnweightedTime returns the compute of one unweighted layer
// (pooling etc.) at batch B on a Pr × Pc grid — the per-layer term of
// GridLayerTimes' residual overhead.
func (c Model) GridUnweightedTime(l *nn.Layer, B int, g grid.Grid) float64 {
	localB := float64(B) / float64(g.Pc)
	scale := float64(B) / float64(g.P())
	return c.GEMMTime(l.TrainFLOPsPerSample()*scale, localB)
}

// GridLayerTimes splits GridIterTime into per-weighted-layer forward and
// backward compute times for the same Pr × Pc grid, plus a residual
// overhead (the fixed per-iteration framework cost and the compute of
// unweighted layers such as pooling) that belongs to no single weighted
// layer. The sum of all layer times plus the overhead equals GridIterTime
// up to floating-point association.
func (c Model) GridLayerTimes(net *nn.Network, B int, g grid.Grid) (times []LayerTime, overhead float64) {
	for _, li := range net.WeightedLayers() {
		times = append(times, c.GridLayerTime(&net.Layers[li], li, B, g))
	}
	overhead = c.FixedIter
	for i := range net.Layers {
		l := &net.Layers[i]
		if !l.HasWeights() {
			overhead += c.GridUnweightedTime(l, B, g)
		}
	}
	return times, overhead
}
