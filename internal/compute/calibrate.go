package compute

import (
	"time"

	"dnnparallel/internal/tensor"
)

// CalibrateLocal reproduces the paper's methodology on the host running
// this binary: where the authors measured AlexNet iteration times with
// Intel Caffe on a KNL (their Fig. 4 input), we measure this machine's
// actual GEMM throughput across batch sizes with the internal/tensor
// kernels and fit the Model's efficiency curve to it. The result can
// drive every scaling experiment with *measured* rather than modeled
// compute constants (dnnsim -exp fig4 -calibrate).
//
// The fit: for each local batch b we time Y = W·X with W d×d and X d×b
// (d fixed), convert to achieved FLOP/s, and set
//
//	Peak·EffMax  = max achieved rate,
//	BHalf        = the b at which the achieved rate is half the max
//	               (interpolated),
//
// keeping the spill parameters at their defaults (host DRAM behaviour at
// toy sizes does not expose an MCDRAM-style cliff).
func CalibrateLocal(d int, budget time.Duration) Model {
	if d <= 0 {
		d = 192
	}
	if budget <= 0 {
		budget = 500 * time.Millisecond
	}
	batches := []int{1, 2, 4, 8, 16, 32, 64, 128}
	rates := make([]float64, len(batches))
	deadline := time.Now().Add(budget)
	perPoint := budget / time.Duration(len(batches))

	w := tensor.Random(d, d, 1, 1)
	for i, b := range batches {
		x := tensor.Random(d, b, 1, int64(b))
		flopsPer := 2 * float64(d) * float64(d) * float64(b)
		var reps int
		start := time.Now()
		stop := start.Add(perPoint)
		for time.Now().Before(stop) && time.Now().Before(deadline) {
			tensor.MatMul(w, x)
			reps++
		}
		if reps == 0 {
			tensor.MatMul(w, x)
			reps = 1
		}
		elapsed := time.Since(start).Seconds()
		rates[i] = flopsPer * float64(reps) / elapsed
	}

	// Max achieved rate ⇒ Peak·EffMax.
	maxRate := rates[0]
	for _, r := range rates {
		if r > maxRate {
			maxRate = r
		}
	}
	// Find where the rate crosses half of max, interpolating in b.
	bHalf := float64(batches[0])
	for i := 0; i < len(batches)-1; i++ {
		if rates[i] <= maxRate/2 && rates[i+1] > maxRate/2 {
			lo, hi := float64(batches[i]), float64(batches[i+1])
			rl, rh := rates[i], rates[i+1]
			frac := (maxRate/2 - rl) / (rh - rl)
			bHalf = lo + frac*(hi-lo)
			break
		}
	}
	if rates[0] > maxRate/2 {
		// Already above half speed at b = 1: tiny saturation constant.
		bHalf = 0.5
	}

	ref := KNLCaffe()
	return Model{
		Peak:         maxRate / ref.EffMax, // keep EffMax's meaning: fraction of Peak
		EffMax:       ref.EffMax,
		BHalf:        bHalf,
		SpillB:       ref.SpillB,
		SpillPenalty: ref.SpillPenalty,
		UpdateRate:   ref.UpdateRate,
		FixedIter:    ref.FixedIter,
	}
}
