package machine

import (
	"math"
	"strings"
	"testing"
)

func TestCoriKNLMatchesTable1(t *testing.T) {
	m := CoriKNL()
	if m.Alpha != 2e-6 {
		t.Fatalf("alpha = %g, Table 1 says 2µs", m.Alpha)
	}
	if bw := m.BandwidthBytes(); math.Abs(bw-6e9) > 1 {
		t.Fatalf("bandwidth = %g B/s, Table 1 says 6 GB/s", bw)
	}
	if m.Beta != WordBytes/6e9 {
		t.Fatalf("beta = %g, want %g", m.Beta, WordBytes/6e9)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNonPhysical(t *testing.T) {
	cases := []Machine{
		{Name: "negAlpha", Alpha: -1, Beta: 1e-9, PeakFlops: 1},
		{Name: "zeroBeta", Alpha: 1e-6, Beta: 0, PeakFlops: 1},
		{Name: "negPeak", Alpha: 1e-6, Beta: 1e-9, PeakFlops: -5},
	}
	for _, m := range cases {
		if m.Validate() == nil {
			t.Fatalf("%s should fail validation", m.Name)
		}
	}
}

func TestWordBytesIsFloat32(t *testing.T) {
	// The cost accounting is in float32 words (deep-learning practice);
	// changing this silently rescales every bandwidth term.
	if WordBytes != 4 {
		t.Fatalf("WordBytes = %d, want 4", WordBytes)
	}
}

func TestStringRendersTable1Fields(t *testing.T) {
	s := CoriKNL().String()
	for _, want := range []string{"Cori-KNL", "GB/s", "TFLOP/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
