package machine

import (
	"strings"
	"testing"
)

func TestFlatIsUniformOneLevel(t *testing.T) {
	m := CoriKNL()
	topo := Flat(m)
	if !topo.Uniform() {
		t.Fatal("Flat topology must have identical link levels")
	}
	if topo.Depth() != 1 {
		t.Fatalf("Flat depth = %d, want 1", topo.Depth())
	}
	if topo.RanksPerNode() != 1 {
		t.Fatalf("Flat ranks/node = %d, want 1", topo.RanksPerNode())
	}
	if topo.IsZero() {
		t.Fatal("Flat(CoriKNL) is not the zero topology")
	}
	if got := topo.Machine(); got != m {
		t.Fatalf("round trip Machine() = %+v, want %+v", got, m)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTopology(t *testing.T) {
	var z Topology
	if !z.IsZero() {
		t.Fatal("zero value must report IsZero")
	}
	if z.Validate() == nil {
		t.Fatal("zero topology must fail validation")
	}
}

func TestCoriKNLNodesPreset(t *testing.T) {
	topo := CoriKNLNodes(4)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", topo.Depth())
	}
	if topo.RanksPerNode() != 4 {
		t.Fatalf("ranks/node = %d, want 4", topo.RanksPerNode())
	}
	if topo.Uniform() {
		t.Fatal("preset must be genuinely two-level")
	}
	m := CoriKNL()
	if topo.Inter().Alpha != m.Alpha || topo.Inter().Beta != m.Beta {
		t.Fatalf("inter level %+v must match the Table 1 Aries constants", topo.Inter())
	}
	if topo.Intra().Beta >= topo.Inter().Beta {
		t.Fatal("intra-node link must be faster than the Aries link")
	}
	// The illustrative preset puts 10× the Aries bandwidth inside a node.
	if r := topo.Intra().BandwidthBytes() / topo.Inter().BandwidthBytes(); r < 9.99 || r > 10.01 {
		t.Fatalf("intra/inter bandwidth ratio = %g, want 10", r)
	}
}

// TestTwoLevelConstructor: TwoLevel reproduces the pre-refactor
// Intra/Inter struct exactly — same links at the accessor surface, the
// node level sized to ranksPerNode, the cluster level unbounded.
func TestTwoLevelConstructor(t *testing.T) {
	intra := Link{Alpha: 5e-7, Beta: WordBytes / 60e9}
	inter := Link{Alpha: 2e-6, Beta: WordBytes / 6e9}
	topo := TwoLevel("demo", intra, inter, 8, 3e12)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Intra() != intra || topo.Inter() != inter {
		t.Fatalf("accessors %+v/%+v, want %+v/%+v", topo.Intra(), topo.Inter(), intra, inter)
	}
	if got := topo.GroupSizes(); len(got) != 2 || got[0] != 8 || got[1] != 0 {
		t.Fatalf("GroupSizes = %v, want [8 0]", got)
	}
	if got := topo.LevelNames(); got[0] != "node" || got[1] != "cluster" {
		t.Fatalf("LevelNames = %v, want [node cluster]", got)
	}
}

func TestGroupOf(t *testing.T) {
	topo := CoriKNLNodes(4)
	for rank, want := range map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2} {
		if got := topo.GroupOf(rank, 0); got != want {
			t.Fatalf("GroupOf(%d, 0) = %d, want %d", rank, got, want)
		}
	}
	// The outermost level is one group spanning the whole machine.
	for _, rank := range []int{0, 7, 1000} {
		if got := topo.GroupOf(rank, 1); got != 0 {
			t.Fatalf("GroupOf(%d, 1) = %d, want 0", rank, got)
		}
	}
}

func TestTopologyValidateRejectsNonPhysical(t *testing.T) {
	good := CoriKNLNodes(4)
	three := Topology{
		Name: "three",
		Levels: []Level{
			{Name: "node", Link: Link{Alpha: 5e-7, Beta: WordBytes / 60e9}, GroupSize: 4},
			{Name: "rack", Link: Link{Alpha: 1e-6, Beta: WordBytes / 12e9}, GroupSize: 64},
			{Name: "spine", Link: Link{Alpha: 2e-6, Beta: WordBytes / 6e9}},
		},
		PeakFlops: 3e12,
	}
	if err := three.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Topology){
		"negIntraAlpha": func(t *Topology) { t.Levels[0].Link.Alpha = -1 },
		"zeroInterBeta": func(t *Topology) { t.Levels[len(t.Levels)-1].Link.Beta = 0 },
		"zeroPPN":       func(t *Topology) { t.Levels[0].GroupSize = 0 },
		"negPeak":       func(t *Topology) { t.PeakFlops = -1 },
		"boundedTop":    func(t *Topology) { t.Levels[len(t.Levels)-1].GroupSize = 128 },
	}
	for name, mutate := range cases {
		for _, base := range []Topology{good, three} {
			topo := base
			topo.Levels = append([]Level(nil), base.Levels...)
			mutate(&topo)
			if topo.Validate() == nil {
				t.Fatalf("%s should fail validation on %s", name, base.Name)
			}
		}
	}
	// Group sizes must grow outward as multiples: a middle level that is
	// smaller than the inner one, or not a multiple of it, is rejected.
	for name, groupSize := range map[string]int{"shrinking": 2, "nonMultiple": 66} {
		bad := three
		bad.Levels = append([]Level(nil), three.Levels...)
		bad.Levels[1].GroupSize = groupSize
		if bad.Validate() == nil {
			t.Fatalf("%s rack size %d should fail validation", name, groupSize)
		}
	}
	// Depth is capped at MaxLevels.
	deep := Topology{Name: "deep", PeakFlops: 1}
	for i := 0; i <= MaxLevels; i++ {
		gs := 1 << i
		if i == MaxLevels {
			gs = 0
		}
		deep.Levels = append(deep.Levels, Level{Link: Link{Beta: 1}, GroupSize: gs})
	}
	if deep.Validate() == nil {
		t.Fatalf("%d levels should exceed the MaxLevels=%d cap", len(deep.Levels), MaxLevels)
	}
}

func TestTopologyString(t *testing.T) {
	s := CoriKNLNodes(4).String()
	for _, want := range []string{"node[4 ranks]", "cluster", "GB/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// The flat embedding renders exactly like the machine it wraps.
	if got, want := Flat(CoriKNL()).String(), CoriKNL().String(); got != want {
		t.Fatalf("Flat String() = %q, want %q", got, want)
	}
}
