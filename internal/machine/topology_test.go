package machine

import (
	"strings"
	"testing"
)

func TestFlatIsUniformOneLevel(t *testing.T) {
	m := CoriKNL()
	topo := Flat(m)
	if !topo.Uniform() {
		t.Fatal("Flat topology must have identical link levels")
	}
	if topo.RanksPerNode != 1 {
		t.Fatalf("Flat ranks/node = %d, want 1", topo.RanksPerNode)
	}
	if topo.IsZero() {
		t.Fatal("Flat(CoriKNL) is not the zero topology")
	}
	if got := topo.Machine(); got != m {
		t.Fatalf("round trip Machine() = %+v, want %+v", got, m)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTopology(t *testing.T) {
	var z Topology
	if !z.IsZero() {
		t.Fatal("zero value must report IsZero")
	}
	if z.Validate() == nil {
		t.Fatal("zero topology must fail validation")
	}
}

func TestCoriKNLNodesPreset(t *testing.T) {
	topo := CoriKNLNodes(4)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.RanksPerNode != 4 {
		t.Fatalf("ranks/node = %d, want 4", topo.RanksPerNode)
	}
	if topo.Uniform() {
		t.Fatal("preset must be genuinely two-level")
	}
	m := CoriKNL()
	if topo.Inter.Alpha != m.Alpha || topo.Inter.Beta != m.Beta {
		t.Fatalf("inter level %+v must match the Table 1 Aries constants", topo.Inter)
	}
	if topo.Intra.Beta >= topo.Inter.Beta {
		t.Fatal("intra-node link must be faster than the Aries link")
	}
	// The illustrative preset puts 10× the Aries bandwidth inside a node.
	if r := topo.Intra.BandwidthBytes() / topo.Inter.BandwidthBytes(); r < 9.99 || r > 10.01 {
		t.Fatalf("intra/inter bandwidth ratio = %g, want 10", r)
	}
}

func TestNodeOf(t *testing.T) {
	topo := CoriKNLNodes(4)
	for rank, want := range map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2} {
		if got := topo.NodeOf(rank); got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", rank, got, want)
		}
	}
}

func TestTopologyValidateRejectsNonPhysical(t *testing.T) {
	good := CoriKNLNodes(4)
	cases := map[string]func(*Topology){
		"negIntraAlpha": func(t *Topology) { t.Intra.Alpha = -1 },
		"zeroInterBeta": func(t *Topology) { t.Inter.Beta = 0 },
		"zeroPPN":       func(t *Topology) { t.RanksPerNode = 0 },
		"negPeak":       func(t *Topology) { t.PeakFlops = -1 },
	}
	for name, mutate := range cases {
		topo := good
		mutate(&topo)
		if topo.Validate() == nil {
			t.Fatalf("%s should fail validation", name)
		}
	}
}

func TestTopologyString(t *testing.T) {
	s := CoriKNLNodes(4).String()
	for _, want := range []string{"4 ranks/node", "intra", "inter", "GB/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// The flat embedding renders exactly like the machine it wraps.
	if got, want := Flat(CoriKNL()).String(), CoriKNL().String(); got != want {
		t.Fatalf("Flat String() = %q, want %q", got, want)
	}
}
