package machine

import (
	"fmt"
	"strings"
)

// Link is the α–β description of one link level of a hierarchical
// interconnect: Alpha is the per-message latency in seconds, Beta the
// inverse bandwidth in seconds per word (WordBytes bytes), exactly as in
// the flat Machine.
type Link struct {
	Alpha float64
	Beta  float64
}

// BandwidthBytes returns the link bandwidth in bytes per second.
func (l Link) BandwidthBytes() float64 { return WordBytes / l.Beta }

// validate reports an error when the link constants are not physical.
func (l Link) validate(name, level string) error {
	if l.Alpha < 0 {
		return fmt.Errorf("machine %q: negative %s latency %g", name, level, l.Alpha)
	}
	if l.Beta <= 0 {
		return fmt.Errorf("machine %q: non-positive %s inverse bandwidth %g", name, level, l.Beta)
	}
	return nil
}

// MaxLevels caps the depth of a hierarchical topology. Six levels is
// far deeper than any published machine description (rank → node →
// rack → switch → spine already stops at five), and the fixed bound
// lets the collective cost carry its per-level attribution in a
// comparable fixed-size array and the timeline simulator reserve one
// contention lane per level.
const MaxLevels = 6

// Level is one rung of a hierarchical machine: a link and the number of
// consecutive machine ranks that share a group at that rung. Levels are
// listed innermost first (node before rack before spine); messages
// between two ranks travel the link of the innermost level whose group
// contains both.
type Level struct {
	Name string
	// Link is the α–β cost of crossing between this level's sub-units
	// (between ranks for the innermost level, between that level's
	// groups for the next, and so on).
	Link Link
	// GroupSize is the number of consecutive machine ranks in one group
	// at this level (rank r belongs to group ⌊r/GroupSize⌋). Sizes grow
	// strictly outward and each must divide the next. The outermost
	// level uses 0: a single group spanning the whole machine, whatever
	// the process count.
	GroupSize int
}

// Topology is a hierarchical machine: an ordered list of link levels,
// innermost first. It generalizes the paper's flat α–β assumption to
// the machines it cites — Cori's Aries network between nodes, shared
// memory or NVLink within one (cf. the multi-GPU nodes of Yadan et al.)
// and, beyond them, racks behind a spine switch — so that the cost of a
// collective depends on where its group's ranks actually sit.
//
// The flat Machine is the one-level special case: Flat(m) has a single
// level carrying the machine's α–β, and every costing layer treats an
// identical-link topology of any depth exactly as the flat machine
// (same closed forms, same single network resource in the timeline
// simulator).
type Topology struct {
	Name string
	// Levels lists the link levels, innermost first. At least one; the
	// last must have GroupSize 0 (the whole machine).
	Levels []Level
	// PeakFlops is the per-process peak floating-point rate (FLOP/s),
	// as in Machine.
	PeakFlops float64
}

// Flat lifts a flat Machine into the one-level Topology special case:
// a single link level spanning the whole machine. All topology-aware
// costs collapse to the flat formulas on it.
func Flat(m Machine) Topology {
	return Topology{
		Name:      m.Name,
		Levels:    []Level{{Name: "net", Link: Link{Alpha: m.Alpha, Beta: m.Beta}}},
		PeakFlops: m.PeakFlops,
	}
}

// TwoLevel builds the two-level node/cluster topology that PR 3
// hard-coded as the Intra/Inter pair: ranks are packed ranksPerNode per
// node, messages within a node travel intra, messages crossing a node
// boundary travel inter.
func TwoLevel(name string, intra, inter Link, ranksPerNode int, peakFlops float64) Topology {
	return Topology{
		Name: name,
		Levels: []Level{
			{Name: "node", Link: intra, GroupSize: ranksPerNode},
			{Name: "cluster", Link: inter},
		},
		PeakFlops: peakFlops,
	}
}

// CoriKNLNodes returns the Table 1 machine with its Aries network as the
// inter-node level (α = 2 µs, 1/β = 6 GB/s) and a shared-memory
// intra-node level (α = 0.5 µs, 1/β = 60 GB/s — ten times the Aries
// bandwidth, the illustrative two-level setting of the topology study)
// for ranksPerNode processes per node.
func CoriKNLNodes(ranksPerNode int) Topology {
	m := CoriKNL()
	return TwoLevel(
		fmt.Sprintf("%s-%dppn", m.Name, ranksPerNode),
		Link{Alpha: 5e-7, Beta: WordBytes / 60e9},
		Link{Alpha: m.Alpha, Beta: m.Beta},
		ranksPerNode, m.PeakFlops)
}

// IsZero reports whether the topology is the zero value (i.e. unset —
// callers fall back to a flat machine).
func (t Topology) IsZero() bool {
	return t.Name == "" && len(t.Levels) == 0 && t.PeakFlops == 0
}

// Depth returns the number of link levels.
func (t Topology) Depth() int { return len(t.Levels) }

// Uniform reports whether every level's link is identical, in which
// case the topology is indistinguishable from a flat machine and every
// cost function uses the flat closed forms exactly.
func (t Topology) Uniform() bool {
	for _, lv := range t.Levels[1:] {
		if lv.Link != t.Levels[0].Link {
			return false
		}
	}
	return true
}

// Intra returns the innermost level's link — the two-level Intra field
// of the pre-refactor representation.
func (t Topology) Intra() Link { return t.Levels[0].Link }

// Inter returns the outermost level's link — the two-level Inter field
// of the pre-refactor representation.
func (t Topology) Inter() Link { return t.Levels[len(t.Levels)-1].Link }

// RanksPerNode returns the innermost level's group size (1 for a flat,
// one-level topology, where every rank is its own node).
func (t Topology) RanksPerNode() int {
	if gs := t.Levels[0].GroupSize; gs > 0 {
		return gs
	}
	return 1
}

// GroupOf returns the index of the level-`level` group that machine
// rank `rank` belongs to (0 for an unbounded outermost level).
func (t Topology) GroupOf(rank, level int) int {
	if gs := t.Levels[level].GroupSize; gs > 0 {
		return rank / gs
	}
	return 0
}

// GroupSizes returns the per-level group sizes, innermost first — the
// classification input of grid.LevelSpanOf.
func (t Topology) GroupSizes() []int {
	sizes := make([]int, len(t.Levels))
	for i, lv := range t.Levels {
		sizes[i] = lv.GroupSize
	}
	return sizes
}

// LevelNames returns the per-level names, innermost first.
func (t Topology) LevelNames() []string {
	names := make([]string, len(t.Levels))
	for i, lv := range t.Levels {
		names[i] = lv.Name
	}
	return names
}

// Machine returns the flat α–β view of the topology at the outermost
// level — the conservative single-level machine a topology-unaware
// consumer should see (every link priced as if it crossed the slowest
// boundary).
func (t Topology) Machine() Machine {
	l := t.Inter()
	return Machine{Name: t.Name, Alpha: l.Alpha, Beta: l.Beta, PeakFlops: t.PeakFlops}
}

// Validate reports an error when the topology constants are not
// physical or the level structure is inconsistent.
func (t Topology) Validate() error {
	if len(t.Levels) == 0 {
		return fmt.Errorf("machine %q: a topology needs at least one level", t.Name)
	}
	if len(t.Levels) > MaxLevels {
		return fmt.Errorf("machine %q: %d levels exceed the maximum %d", t.Name, len(t.Levels), MaxLevels)
	}
	prev := 0
	for i, lv := range t.Levels {
		label := lv.Name
		if label == "" {
			label = fmt.Sprintf("level %d", i)
		}
		if err := lv.Link.validate(t.Name, label); err != nil {
			return err
		}
		last := i == len(t.Levels)-1
		if last {
			if lv.GroupSize != 0 {
				return fmt.Errorf("machine %q: outermost level %q must have GroupSize 0 (the whole machine), got %d",
					t.Name, label, lv.GroupSize)
			}
			continue
		}
		if lv.GroupSize < 1 {
			return fmt.Errorf("machine %q: level %q needs a group size ≥ 1, got %d", t.Name, label, lv.GroupSize)
		}
		if i > 0 {
			if lv.GroupSize <= prev {
				return fmt.Errorf("machine %q: level %q group size %d must exceed the inner level's %d",
					t.Name, label, lv.GroupSize, prev)
			}
			if lv.GroupSize%prev != 0 {
				return fmt.Errorf("machine %q: level %q group size %d must be a multiple of the inner level's %d",
					t.Name, label, lv.GroupSize, prev)
			}
		}
		prev = lv.GroupSize
	}
	if t.PeakFlops <= 0 {
		return fmt.Errorf("machine %q: non-positive peak flops %g", t.Name, t.PeakFlops)
	}
	return nil
}

// String formats the topology like Table 1, one clause per level.
func (t Topology) String() string {
	if len(t.Levels) == 0 {
		return t.Name
	}
	if t.Depth() == 1 {
		return t.Machine().String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", t.Name)
	for i, lv := range t.Levels {
		if i > 0 {
			b.WriteByte(',')
		}
		name := lv.Name
		if name == "" {
			name = fmt.Sprintf("l%d", i)
		}
		fmt.Fprintf(&b, " %s", name)
		if lv.GroupSize > 0 {
			fmt.Fprintf(&b, "[%d ranks]", lv.GroupSize)
		}
		fmt.Fprintf(&b, " alpha=%.3gs 1/beta=%.3g GB/s", lv.Link.Alpha, lv.Link.BandwidthBytes()/1e9)
	}
	fmt.Fprintf(&b, ", peak=%.3g TFLOP/s", t.PeakFlops/1e12)
	return b.String()
}
