package machine

import "fmt"

// Link is the α–β description of one link level of a hierarchical
// interconnect: Alpha is the per-message latency in seconds, Beta the
// inverse bandwidth in seconds per word (WordBytes bytes), exactly as in
// the flat Machine.
type Link struct {
	Alpha float64
	Beta  float64
}

// BandwidthBytes returns the link bandwidth in bytes per second.
func (l Link) BandwidthBytes() float64 { return WordBytes / l.Beta }

// validate reports an error when the link constants are not physical.
func (l Link) validate(name, level string) error {
	if l.Alpha < 0 {
		return fmt.Errorf("machine %q: negative %s latency %g", name, level, l.Alpha)
	}
	if l.Beta <= 0 {
		return fmt.Errorf("machine %q: non-positive %s inverse bandwidth %g", name, level, l.Beta)
	}
	return nil
}

// Topology is a two-level hierarchical machine: ranks are packed onto
// nodes of RanksPerNode processes each (rank r lives on node
// ⌊r/RanksPerNode⌋), messages between ranks on the same node travel the
// Intra link and messages crossing a node boundary travel the Inter link.
// It generalizes the paper's flat α–β assumption to the machines it cites
// — Cori's Aries network between nodes, shared memory or NVLink within
// one (cf. the multi-GPU nodes of Yadan et al.) — so that the cost of a
// collective depends on where its group's ranks actually sit.
//
// The flat Machine is the one-level special case: Flat(m) has identical
// links at both levels, and every costing layer treats an identical-link
// topology exactly as the flat machine (same closed forms, same single
// network resource in the timeline simulator).
type Topology struct {
	Name string
	// Intra is the link between two ranks on the same node.
	Intra Link
	// Inter is the link between two ranks on different nodes.
	Inter Link
	// RanksPerNode is the number of processes packed per node.
	RanksPerNode int
	// PeakFlops is the per-process peak floating-point rate (FLOP/s), as
	// in Machine.
	PeakFlops float64
}

// Flat lifts a flat Machine into the one-level Topology special case:
// both link levels carry the machine's α–β and every rank is its own
// node. All topology-aware costs collapse to the flat formulas on it.
func Flat(m Machine) Topology {
	l := Link{Alpha: m.Alpha, Beta: m.Beta}
	return Topology{Name: m.Name, Intra: l, Inter: l, RanksPerNode: 1, PeakFlops: m.PeakFlops}
}

// CoriKNLNodes returns the Table 1 machine with its Aries network as the
// inter-node level (α = 2 µs, 1/β = 6 GB/s) and a shared-memory
// intra-node level (α = 0.5 µs, 1/β = 60 GB/s — ten times the Aries
// bandwidth, the illustrative two-level setting of the topology study)
// for ranksPerNode processes per node.
func CoriKNLNodes(ranksPerNode int) Topology {
	m := CoriKNL()
	return Topology{
		Name:         fmt.Sprintf("%s-%dppn", m.Name, ranksPerNode),
		Intra:        Link{Alpha: 5e-7, Beta: WordBytes / 60e9},
		Inter:        Link{Alpha: m.Alpha, Beta: m.Beta},
		RanksPerNode: ranksPerNode,
		PeakFlops:    m.PeakFlops,
	}
}

// IsZero reports whether the topology is the zero value (i.e. unset —
// callers fall back to a flat machine).
func (t Topology) IsZero() bool { return t == Topology{} }

// Uniform reports whether both link levels are identical, in which case
// the topology is indistinguishable from a flat machine and every cost
// function uses the flat closed forms exactly.
func (t Topology) Uniform() bool { return t.Intra == t.Inter }

// NodeOf returns the node index of a machine rank.
func (t Topology) NodeOf(rank int) int {
	if t.RanksPerNode < 1 {
		panic(fmt.Sprintf("machine %q: RanksPerNode=%d", t.Name, t.RanksPerNode))
	}
	return rank / t.RanksPerNode
}

// Machine returns the flat α–β view of the topology at the inter-node
// level — the conservative single-level machine a topology-unaware
// consumer should see (every link priced as if it crossed nodes).
func (t Topology) Machine() Machine {
	return Machine{Name: t.Name, Alpha: t.Inter.Alpha, Beta: t.Inter.Beta, PeakFlops: t.PeakFlops}
}

// Validate reports an error when the topology constants are not physical.
func (t Topology) Validate() error {
	if err := t.Intra.validate(t.Name, "intra-node"); err != nil {
		return err
	}
	if err := t.Inter.validate(t.Name, "inter-node"); err != nil {
		return err
	}
	if t.RanksPerNode < 1 {
		return fmt.Errorf("machine %q: RanksPerNode must be ≥ 1, got %d", t.Name, t.RanksPerNode)
	}
	if t.PeakFlops <= 0 {
		return fmt.Errorf("machine %q: non-positive peak flops %g", t.Name, t.PeakFlops)
	}
	return nil
}

// String formats the topology like Table 1, one line per level.
func (t Topology) String() string {
	if t.Uniform() && t.RanksPerNode == 1 {
		return t.Machine().String()
	}
	return fmt.Sprintf("%s: %d ranks/node, intra alpha=%.3gs 1/beta=%.3g GB/s, inter alpha=%.3gs 1/beta=%.3g GB/s, peak=%.3g TFLOP/s",
		t.Name, t.RanksPerNode,
		t.Intra.Alpha, t.Intra.BandwidthBytes()/1e9,
		t.Inter.Alpha, t.Inter.BandwidthBytes()/1e9,
		t.PeakFlops/1e12)
}
