// Package machine models the distributed-memory platform of the paper's
// Table 1: a flat α–β network (Machine) plus a per-process compute
// capability, and the two-level generalization the paper's "Limitations"
// section leaves open (Topology) — distinct intra-node and inter-node α–β
// links with a fixed number of ranks per node.
//
// Conventions (matching Section 2.2 of the paper):
//   - α is the per-message latency in seconds.
//   - β is the inverse bandwidth in seconds per *word*. The paper counts
//     communication volume in words (elements of W, X, Y); deep-learning
//     practice is float32, so a word is 4 bytes and β = WordBytes / bytes-per-second.
//   - Machine is flat: no topology, no congestion — the paper's stated
//     assumption. Topology adds exactly one refinement, a second link
//     level at node boundaries; Flat(m) embeds a Machine as the one-level
//     special case and every cost built on a uniform Topology reproduces
//     the flat numbers exactly.
package machine

import "fmt"

// WordBytes is the size of one communicated word. The paper's platform
// constants (1/β = 6 GB/s) are byte-based; all volume terms in the cost
// formulas count float32 words.
const WordBytes = 4

// Machine is an α–β description of the platform.
type Machine struct {
	Name string
	// Alpha is the network latency per message in seconds.
	Alpha float64
	// Beta is the inverse bandwidth in seconds per word (WordBytes bytes).
	Beta float64
	// PeakFlops is the per-process peak floating-point rate (FLOP/s) used
	// by the compute model.
	PeakFlops float64
}

// CoriKNL returns the platform of Table 1: NERSC Cori phase-II Intel
// Knights Landing nodes. α = 2 µs, 1/β = 6 GB/s. Peak is set to the KNL's
// practically achievable single-precision GEMM rate (≈2.6 TFLOP/s measured
// by Intel for large DGEMM ≈ 2.2 TF double / ~4.4 TF single; we use a
// conservative 3 TFLOP/s — the absolute value only scales Fig. 4's y-axis).
func CoriKNL() Machine {
	return Machine{
		Name:      "Cori-KNL",
		Alpha:     2e-6,
		Beta:      WordBytes / 6e9,
		PeakFlops: 3e12,
	}
}

// Validate reports an error when the machine constants are not physical.
func (m Machine) Validate() error {
	if m.Alpha < 0 {
		return fmt.Errorf("machine %q: negative latency %g", m.Name, m.Alpha)
	}
	if m.Beta <= 0 {
		return fmt.Errorf("machine %q: non-positive inverse bandwidth %g", m.Name, m.Beta)
	}
	if m.PeakFlops <= 0 {
		return fmt.Errorf("machine %q: non-positive peak flops %g", m.Name, m.PeakFlops)
	}
	return nil
}

// BandwidthBytes returns the link bandwidth in bytes per second.
func (m Machine) BandwidthBytes() float64 { return WordBytes / m.Beta }

// String formats the machine like Table 1.
func (m Machine) String() string {
	return fmt.Sprintf("%s: alpha=%.3gs, 1/beta=%.3g GB/s, peak=%.3g TFLOP/s",
		m.Name, m.Alpha, m.BandwidthBytes()/1e9, m.PeakFlops/1e12)
}
