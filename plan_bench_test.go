package dnnparallel

import "testing"

// BenchmarkPlanScenario times the full public façade on the paper's
// headline scenario: normalize + validate + resolve + the Pr × Pc search.
// This is the per-request cost a dnnserve cache miss pays, seeding the
// BENCH trajectory for the planning service.
func BenchmarkPlanScenario(b *testing.B) {
	sc := DefaultScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Plan(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Best.IterSeconds, "plan_iter_s")
		}
	}
}

// BenchmarkPlanScenarioPipeline adds the expensive dimensions — timeline
// scoring and a micro-batch search — the worst realistic /v1/plan miss.
func BenchmarkPlanScenarioPipeline(b *testing.B) {
	sc := New("alexnet", 2048, 512,
		WithTimeline(PolicyBackprop),
		WithMicroBatches(ScheduleOneFOneB, 1, 2, 4, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioCanonical times the cache-key path alone: the
// dnnserve per-request fixed cost even on a hit.
func BenchmarkScenarioCanonical(b *testing.B) {
	sc := DefaultScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Canonical(); err != nil {
			b.Fatal(err)
		}
	}
}
