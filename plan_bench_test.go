package dnnparallel

import "testing"

// BenchmarkPlanScenario times the full public façade on the paper's
// headline scenario: normalize + validate + resolve + the Pr × Pc search.
// This is the per-request cost a dnnserve cache miss pays, seeding the
// BENCH trajectory for the planning service.
func BenchmarkPlanScenario(b *testing.B) {
	sc := DefaultScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Plan(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Best.IterSeconds, "plan_iter_s")
		}
	}
}

// BenchmarkPlanScenarioTwoLevel prices the same search against the
// two-level Cori topology: the hierarchical recursion plus the
// placement search (row- and col-major) on top of the flat benchmark,
// so the refactor's cost on the hot loop is recorded, not guessed.
func BenchmarkPlanScenarioTwoLevel(b *testing.B) {
	sc := New("alexnet", 2048, 512, WithTopology(32, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanScenarioThreeLevel deepens the hierarchy to three link
// levels (node/rack/spine with a bandwidth taper): the marginal cost of
// one more recursion level per collective.
func BenchmarkPlanScenarioThreeLevel(b *testing.B) {
	sc := New("alexnet", 2048, 512, WithLevels(
		LevelSpec{Name: "node", AlphaSeconds: 5e-7, BandwidthGBs: 60, GroupRanks: 16},
		LevelSpec{Name: "rack", AlphaSeconds: 1e-6, BandwidthGBs: 12, GroupRanks: 128},
		LevelSpec{Name: "spine", AlphaSeconds: 2e-6, BandwidthGBs: 6},
	))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanScenarioPipeline adds the expensive dimensions — timeline
// scoring and a micro-batch search — the worst realistic /v1/plan miss.
func BenchmarkPlanScenarioPipeline(b *testing.B) {
	sc := New("alexnet", 2048, 512,
		WithTimeline(PolicyBackprop),
		WithMicroBatches(ScheduleOneFOneB, 1, 2, 4, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanScenarioStages adds the stage-partition dimensions on
// top of the pipeline search: S = 2 stages, per-stage grids of P/2
// ranks, and the layer-cut co-search (7 two-stage partitions of
// AlexNet's 8 weighted layers per grid).
func BenchmarkPlanScenarioStages(b *testing.B) {
	sc := stagedScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// stagedScenario is the staged AlexNet search both A/B benchmarks
// below share: the heaviest realistic /v1/plan miss (timeline scoring,
// micro-batch search, S = 2 stage partitions) and the space where the
// branch-and-bound lower bounds prune hardest.
func stagedScenario() Scenario {
	return New("alexnet", 2048, 512,
		WithTimeline(PolicyBackprop),
		WithMicroBatches(ScheduleOneFOneB, 1, 2, 4, 8),
		WithStages(2))
}

// BenchmarkPlanScenarioParallel is the B side of the search-engine A/B:
// the staged search under the parallel engine with bounds on and
// Workers unset, so `-cpu 1,2,4` sweeps the worker count (the engine
// defaults workers to GOMAXPROCS). Compare against
// BenchmarkPlanScenarioSerialBaseline — the result is bit-identical.
func BenchmarkPlanScenarioParallel(b *testing.B) {
	sc := stagedScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanScenarioSerialBaseline is the A side: the same staged
// search forced onto one worker with branch-and-bound disabled —
// the pre-engine exhaustive behavior, every candidate priced serially.
func BenchmarkPlanScenarioSerialBaseline(b *testing.B) {
	sc := stagedScenario()
	sc.Search = &SearchSpec{Workers: 1, Bounds: boolPtr(false)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func boolPtr(v bool) *bool { return &v }

// ttaScenario is the campaign search the tta A/B benchmarks share: the
// golden alexnet-tta question — AlexNet P=512, base batch 512, seven
// candidate batch sizes spanning the three convergence regimes, the
// network's preset curve.
func ttaScenario() Scenario {
	return New("alexnet", 512, 512,
		WithBatchSizes(256, 512, 1024, 2048, 4096, 8192, 16384))
}

// BenchmarkPlanScenarioTTA is the B side of the objective A/B: the
// time-to-accuracy campaign search, whose batch-size dimension
// multiplies the grid sweep by 7 but is cut back by the per-B lower
// bound S(B) × computeFloor(B).
func BenchmarkPlanScenarioTTA(b *testing.B) {
	sc := ttaScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Plan(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Best.TimeToAccuracySeconds, "plan_tta_s")
		}
	}
}

// BenchmarkPlanScenarioTTAIterBaseline is the A side: the identical
// scenario under the default iteration objective (batch fixed at the
// base 512). Interleaved with the B side by scripts/bench.sh, the pair
// yields the tta_search_overhead record in BENCH_plan.json — and this
// side is the pre-existing hot path, which must not regress.
func BenchmarkPlanScenarioTTAIterBaseline(b *testing.B) {
	sc := New("alexnet", 512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioCanonical times the cache-key path alone: the
// dnnserve per-request fixed cost even on a hit.
func BenchmarkScenarioCanonical(b *testing.B) {
	sc := DefaultScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Canonical(); err != nil {
			b.Fatal(err)
		}
	}
}
