package dnnparallel

import (
	"fmt"
	"sort"

	"dnnparallel/internal/grid"
	"dnnparallel/internal/machine"
	"dnnparallel/internal/nn"
	"dnnparallel/internal/planner"
	"dnnparallel/internal/timeline"
)

// LayerStrategy is one row of the best plan's per-layer strategy table.
type LayerStrategy struct {
	Layer    string `json:"layer"`
	Kind     string `json:"kind"`
	Output   string `json:"output"`
	Weights  int    `json:"weights"`
	Strategy string `json:"strategy"`
}

// StageSummary is one row of a stage-partitioned plan's per-stage table:
// which layers the stage owns, where its rank block sits, what it
// computes, communicates, and stashes, and what its incoming boundary
// handoff costs — with the topology level the cut crosses.
type StageSummary struct {
	Stage int `json:"stage"`
	// Layers is the "first-last" weighted-layer range by network layer
	// name, LayerCount the number of weighted layers.
	Layers     string `json:"layers"`
	LayerCount int    `json:"layer_count"`
	// Grid is the stage's process grid, RankOffset the machine rank its
	// block starts at.
	Grid       string `json:"grid"`
	RankOffset int    `json:"rank_offset"`
	// ParamWords is the stage's total (unsharded) weight words.
	ParamWords float64 `json:"param_words"`
	// CompSeconds/CommSeconds are per micro-batch: the stage's GEMM time
	// and its Eq. 3–9 collective time.
	CompSeconds float64 `json:"comp_seconds"`
	CommSeconds float64 `json:"comm_seconds"`
	// StashBytes is the per-process activation stash high-water mark.
	StashBytes float64 `json:"stash_bytes"`
	// BoundaryBytes is the per-micro-batch activation volume handed into
	// this stage (0 for stage 0), BoundarySeconds its forward+backward
	// transfer cost, and BoundaryLevel the topology level the cut
	// crosses ("" on a flat machine).
	BoundaryBytes   float64 `json:"boundary_bytes,omitempty"`
	BoundarySeconds float64 `json:"boundary_seconds,omitempty"`
	BoundaryLevel   string  `json:"boundary_level,omitempty"`
}

// PlanSummary is the serializable view of one evaluated configuration —
// planner.Plan without the internal pointers, safe to hand to an HTTP
// client.
type PlanSummary struct {
	Grid      string         `json:"grid"`
	Placement grid.Placement `json:"placement"`
	Mode      planner.Mode   `json:"mode"`

	// MicroBatch is the micro-batch count the plan was priced at (1 =
	// single-iteration scoring); Schedule and BubbleFraction qualify
	// pipelined plans.
	MicroBatch     int            `json:"micro_batch,omitempty"`
	Schedule       timeline.Shape `json:"schedule"`
	BubbleFraction float64        `json:"bubble_fraction,omitempty"`

	// Stages, Partition, and PerStage describe stage-partitioned plans:
	// the stage count (omitted for classic single-stage plans, where
	// Grid spans the whole machine), the cut positions into the
	// weighted-layer list, and the per-stage table. For Stages > 1,
	// Grid is the shared per-stage grid.
	Stages    int            `json:"stages,omitempty"`
	Partition []int          `json:"partition,omitempty"`
	PerStage  []StageSummary `json:"per_stage,omitempty"`

	// Batch is the global batch size the plan was priced at — the
	// scenario's Batch unless a time-to-accuracy search selected another
	// candidate from BatchSizes. StepsToTarget and TimeToAccuracySeconds
	// carry the time-to-accuracy objective's campaign prediction (the
	// modeled steps to the target accuracy and steps × iter_seconds);
	// both are omitted under the iteration objective.
	Batch                 int     `json:"batch,omitempty"`
	StepsToTarget         float64 `json:"steps_to_target,omitempty"`
	TimeToAccuracySeconds float64 `json:"time_to_accuracy_seconds,omitempty"`

	CommSeconds        float64 `json:"comm_seconds"`
	CompSeconds        float64 `json:"comp_seconds"`
	ExposedCommSeconds float64 `json:"exposed_comm_seconds"`
	IterSeconds        float64 `json:"iter_seconds"`
	EpochSeconds       float64 `json:"epoch_seconds,omitempty"`
	MemoryWords        float64 `json:"memory_words,omitempty"`

	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`

	// Assignment is the per-layer strategy table, filled for the best
	// plan only (layer order).
	Assignment []LayerStrategy `json:"assignment,omitempty"`
}

// PlanResult is Plan's answer: the best configuration, the whole search
// space it beat, and the pure-batch baseline the paper quotes speedups
// against. The JSON form is the dnnserve /v1/plan response body.
type PlanResult struct {
	// Scenario echoes the normalized spec the result answers.
	Scenario Scenario `json:"scenario"`
	// Machine describes the platform the plans were priced on.
	Machine string `json:"machine"`
	// Network is the resolved network's display name.
	Network string `json:"network"`

	Best PlanSummary `json:"best"`
	// All lists every evaluated factorization, ordered by increasing Pr.
	All []PlanSummary `json:"all,omitempty"`
	// PureBatch is the 1×P baseline when it was evaluated.
	PureBatch *PlanSummary `json:"pure_batch,omitempty"`
	// SpeedupTotal/SpeedupComm quote Best against PureBatch (0 when the
	// baseline is infeasible — the beyond-batch regime).
	SpeedupTotal float64 `json:"speedup_total,omitempty"`
	SpeedupComm  float64 `json:"speedup_comm,omitempty"`

	// Stats is the planner's search telemetry (candidates enumerated /
	// pruned / priced / simulated, the best-cost trajectory, and the
	// enumerate/price/simulate wall-time split). Populated when the
	// scenario searched (nil for a pinned Grid, which evaluates exactly
	// one configuration). The counts are deterministic; the times are
	// not — see planner.SearchStats.ZeroTimes.
	Stats *SearchStats `json:"search_stats,omitempty"`

	// Raw is the untranslated planner result (nil over the wire): the
	// bit-for-bit planner.Optimize output, kept for callers that need
	// the full breakdowns and timelines.
	Raw *planner.Result `json:"-"`
}

// LayerTiming is one layer's scheduled time in a simulated iteration.
type LayerTiming struct {
	Layer       string  `json:"layer"`
	CompSeconds float64 `json:"comp_seconds"`
	CommSeconds float64 `json:"comm_seconds"`
	// FwdExposed/BwdExposed are the compute-pipe stalls ending at this
	// layer's forward/backward GEMMs.
	FwdExposed float64 `json:"fwd_exposed,omitempty"`
	BwdExposed float64 `json:"bwd_exposed,omitempty"`
}

// SimResult is Simulate's answer: one pinned configuration priced by the
// per-layer event-driven timeline. The JSON form is the dnnserve
// /v1/simulate response body.
type SimResult struct {
	Scenario Scenario `json:"scenario"`
	Machine  string   `json:"machine"`
	Network  string   `json:"network"`

	// Config summarizes the evaluated configuration.
	Config PlanSummary `json:"config"`

	Makespan           float64 `json:"makespan_seconds"`
	ExposedCommSeconds float64 `json:"exposed_comm_seconds"`
	DrainSeconds       float64 `json:"drain_seconds"`
	BubbleSeconds      float64 `json:"bubble_seconds"`
	BubbleFraction     float64 `json:"bubble_fraction"`
	MicroBatches       int     `json:"micro_batches"`
	Stages             int     `json:"stages"`

	PerLayer []LayerTiming `json:"per_layer,omitempty"`

	// Raw is the untranslated timeline result (nil over the wire).
	Raw *timeline.Result `json:"-"`
}

// InfeasibleError reports a scenario whose search space contains no
// feasible configuration (or whose pinned grid is infeasible). It is a
// planning outcome, not a malformed request: dnnserve maps it to 422
// where a *ValidationError maps to 400.
type InfeasibleError struct {
	Scenario string // the canonical grid or B/P description
	Reason   string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("dnnparallel: no feasible plan for %s: %s", e.Scenario, e.Reason)
}

// layerRange renders a stage's inclusive layer slice as "first-last" by
// layer name, or by index when the network is not at hand (the All
// table).
func layerRange(net *nn.Network, first, last int) string {
	if net == nil {
		if first == last {
			return fmt.Sprintf("#%d", first)
		}
		return fmt.Sprintf("#%d-#%d", first, last)
	}
	if first == last {
		return net.Layers[first].Name
	}
	return net.Layers[first].Name + "-" + net.Layers[last].Name
}

// summarize translates one planner.Plan. The assignment table is filled
// only when net is non-nil (the best plan).
func summarize(p planner.Plan, net *nn.Network) PlanSummary {
	s := PlanSummary{
		Grid:                  p.Grid.String(),
		Placement:             p.Placement,
		Mode:                  p.Mode,
		MicroBatch:            p.MicroBatch,
		Schedule:              p.Schedule,
		BubbleFraction:        p.BubbleFraction,
		Batch:                 p.Batch,
		StepsToTarget:         p.StepsToTarget,
		TimeToAccuracySeconds: p.TimeToAccuracySeconds,
		CommSeconds:           p.CommSeconds,
		CompSeconds:           p.CompSeconds,
		ExposedCommSeconds:    p.ExposedCommSeconds,
		IterSeconds:           p.IterSeconds,
		EpochSeconds:          p.EpochSeconds,
		MemoryWords:           p.MemoryWords,
		Feasible:              p.Feasible,
		Reason:                p.Reason,
	}
	if p.Stages > 1 {
		s.Stages = p.Stages
		s.Partition = append([]int(nil), p.Partition...)
		for _, sc := range p.PerStage {
			row := StageSummary{
				Stage:           sc.Stage,
				Layers:          layerRange(net, sc.FirstLayer, sc.LastLayer),
				LayerCount:      sc.Layers,
				Grid:            sc.Grid.String(),
				RankOffset:      sc.RankOffset,
				ParamWords:      sc.ParamWords,
				CompSeconds:     sc.CompSeconds,
				CommSeconds:     sc.CommSeconds,
				StashBytes:      sc.StashWords * machine.WordBytes,
				BoundaryBytes:   sc.BoundaryWords * machine.WordBytes,
				BoundarySeconds: sc.BoundarySeconds,
				BoundaryLevel:   sc.BoundaryLevelName,
			}
			s.PerStage = append(s.PerStage, row)
		}
	}
	if net != nil && p.Assignment != nil {
		lis := make([]int, 0, len(p.Assignment))
		for li := range p.Assignment {
			lis = append(lis, li)
		}
		sort.Ints(lis)
		for _, li := range lis {
			l := &net.Layers[li]
			s.Assignment = append(s.Assignment, LayerStrategy{
				Layer:    l.Name,
				Kind:     l.Kind.String(),
				Output:   l.Out.String(),
				Weights:  l.Weights(),
				Strategy: p.Assignment[li].String(),
			})
		}
	}
	return s
}
